//! The typed session builder behind [`ActiveLearner`].
//!
//! [`SessionBuilder`] is the only way to construct an [`ActiveLearner`]:
//! a typestate chain that makes the required inputs unforgettable and
//! the optional ones named (the old eight-argument positional
//! constructor, with its four pairwise-swappable `Vec`s, is gone):
//!
//! ```text
//! ActiveLearner::builder(model)   SessionBuilder<M, NeedsPool>
//!     .pool(samples, labels)      SessionBuilder<M, NeedsTest>
//!     .test(samples, labels)      SessionBuilder<M, NeedsStrategy>
//!     .strategy(strategy)         SessionBuilder<M, Ready>
//!     .seed(42)                   // optional, Ready-only
//!     .config(config)
//!     .subscriber(sub)            // observability handles
//!     .metrics(registry)
//!     .journal(run_journal)
//!     .build()                    ActiveLearner<M>
//! ```
//!
//! Skipping a required stage is a *compile* error, not a panic: each
//! `pool`/`test`/`strategy` call consumes the builder and returns the
//! next stage marker, and `build()` only exists on
//! `SessionBuilder<M, Ready>`.
//!
//! The builder also owns the session's observability handles
//! ([`SessionObs`]): a [`Subscriber`] that receives this session's spans
//! (independent of the process-global dispatch), a
//! [`MetricsRegistry`] accumulating phase-timing histograms, and a
//! [`RunJournal`] that checkpoints every round to a crash-safe JSONL
//! file.

use std::marker::PhantomData;
use std::sync::Arc;

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_obs::metrics::MetricsRegistry;
use histal_obs::trace::Subscriber;
use histal_obs::Journal;
use histal_text::SparseVec;
use rand::SeedableRng;

use crate::driver::{ActiveLearner, PoolConfig, RoundRecord};
use crate::error::Error;
use crate::lhs::LhsSelector;
use crate::live::{Session, SessionSnapshot, SessionStep, SNAPSHOT_VERSION};
use crate::model::Model;
use crate::pipeline::{LabelResponse, Oracle, OracleAnnotate};
use crate::strategy::Strategy;

// ---------------------------------------------------------------------------
// Observability handles
// ---------------------------------------------------------------------------

/// The observability handles a session carries: all optional, all
/// default-off, and all deliberately outside the algorithmic state so a
/// fully-instrumented run selects the exact same samples as a bare one.
#[derive(Default, Clone)]
pub struct SessionObs {
    /// Session-owned span/event sink. `None` falls back to the global
    /// subscriber installed via [`histal_obs::trace::set_subscriber`]
    /// (which is itself usually absent — the disabled path).
    pub(crate) subscriber: Option<Arc<dyn Subscriber>>,
    /// Phase-timing histograms (`al.fit_us`, `al.eval_us`, `al.score_us`,
    /// `al.select_us`) and round counters land here when present.
    pub(crate) metrics: Option<Arc<MetricsRegistry>>,
    /// Per-round crash-safe checkpointing.
    pub(crate) journal: Option<Arc<RunJournal>>,
}

impl SessionObs {
    pub(crate) fn subscriber(&self) -> Option<&Arc<dyn Subscriber>> {
        self.subscriber.as_ref()
    }

    pub(crate) fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_deref()
    }

    pub(crate) fn journal(&self) -> Option<&RunJournal> {
        self.journal.as_deref()
    }

    /// Publish a completed round to every attached handle: a debug
    /// event, the phase-timing histograms (microsecond units so the
    /// log-bucket resolution is useful at sub-millisecond phases), and
    /// the crash-safe journal checkpoint. Both drivers — the batch
    /// [`ActiveLearner`] and the interactive [`crate::live::Session`] —
    /// route through here, so a round looks identical downstream
    /// regardless of which loop produced it.
    pub(crate) fn publish_round(&self, record: &RoundRecord) -> Result<(), Error> {
        histal_obs::session_event!(
            self.subscriber(),
            histal_obs::trace::Level::Debug,
            "al.round.complete",
            round = record.round,
            selected = record.selected.len(),
            fit_ms = record.fit_ms,
            eval_ms = record.eval_ms,
            score_ms = record.score_ms,
            select_ms = record.select_ms,
        );
        if let Some(metrics) = self.metrics() {
            metrics.counter_add("al.rounds", 1);
            metrics.counter_add("al.selected", record.selected.len() as u64);
            metrics.histogram_record("al.fit_us", (record.fit_ms * 1e3) as u64);
            metrics.histogram_record("al.eval_us", (record.eval_ms * 1e3) as u64);
            metrics.histogram_record("al.score_us", (record.score_ms * 1e3) as u64);
            metrics.histogram_record("al.select_us", (record.select_ms * 1e3) as u64);
        }
        if let Some(journal) = self.journal() {
            journal.record_round(record)?;
        }
        Ok(())
    }
}

/// One journal line per completed selection round: the minimal record
/// needed to audit *what* was picked *when* and at what cost, keyed so a
/// resume can verify it belongs to the same configured run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundJournalRecord {
    /// Record discriminator, always `"round"`.
    pub kind: String,
    /// Grid-cell key, e.g. `"fig3_text/ag_news/WSHS(entropy)/r0"`.
    pub cell: String,
    /// Hash of the full cell configuration; a resume must see the same
    /// hash or the journaled rounds are ignored.
    pub config_hash: u64,
    /// The run's RNG seed.
    pub seed: u64,
    /// Round index (0-based).
    pub round: usize,
    /// Pool ids selected this round.
    pub selected: Vec<usize>,
    /// Phase timings, milliseconds (wall-clock; *not* covered by the
    /// config hash, they vary run to run).
    pub fit_ms: f64,
    /// Pool evaluation time (ms).
    pub eval_ms: f64,
    /// Scoring time (ms).
    pub score_ms: f64,
    /// Batch selection time (ms).
    pub select_ms: f64,
}

/// A journal handle scoped to one run (one grid cell): the shared
/// [`Journal`] file plus the cell key, config hash and seed stamped on
/// every record this session appends.
pub struct RunJournal {
    journal: Arc<Journal>,
    cell: String,
    config_hash: u64,
    seed: u64,
}

impl RunJournal {
    /// Scope `journal` to the run identified by `cell`/`config_hash`/
    /// `seed`.
    pub fn new(
        journal: Arc<Journal>,
        cell: impl Into<String>,
        config_hash: u64,
        seed: u64,
    ) -> RunJournal {
        RunJournal {
            journal,
            cell: cell.into(),
            config_hash,
            seed,
        }
    }

    /// The cell key records are stamped with.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// The config hash records are stamped with.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Append the per-round checkpoint record.
    pub(crate) fn record_round(&self, record: &RoundRecord) -> Result<(), Error> {
        let line = RoundJournalRecord {
            kind: "round".to_string(),
            cell: self.cell.clone(),
            config_hash: self.config_hash,
            seed: self.seed,
            round: record.round,
            selected: record.selected.clone(),
            fit_ms: record.fit_ms,
            eval_ms: record.eval_ms,
            score_ms: record.score_ms,
            select_ms: record.select_ms,
        };
        self.journal.append(&line).map_err(Error::journal)
    }

    /// Append an arbitrary extra record (e.g. the harness's cell-complete
    /// record) stamped with nothing — the caller owns the schema.
    pub fn append<T: serde::Serialize>(&self, record: &T) -> Result<(), Error> {
        self.journal.append(record).map_err(Error::journal)
    }
}

/// Deterministic FNV-1a hash of a run configuration, for stamping
/// journal records. Callers fold in whatever identifies the cell
/// (config JSON, strategy name, scale, …); the exact inputs are the
/// caller's contract with itself across restarts.
pub fn fingerprint(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Separator so ["ab","c"] ≠ ["a","bc"].
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Typestate builder
// ---------------------------------------------------------------------------

/// Builder stage: the unlabeled pool (samples + hidden oracle labels) is
/// still missing.
pub struct NeedsPool(());
/// Builder stage: the held-out test split is still missing.
pub struct NeedsTest(());
/// Builder stage: the query [`Strategy`] is still missing.
pub struct NeedsStrategy(());
/// Builder stage: all required inputs present; optional knobs and
/// `build()` are available.
pub struct Ready(());

/// Typed builder for an [`ActiveLearner`] session. See the
/// [module docs](self) for the stage diagram; obtain one via
/// [`ActiveLearner::builder`].
pub struct SessionBuilder<M: Model, Stage = NeedsPool> {
    model: M,
    samples: Vec<M::Sample>,
    oracle_labels: Vec<M::Label>,
    test_samples: Vec<M::Sample>,
    test_labels: Vec<M::Label>,
    oracle: Option<Box<dyn Oracle<M>>>,
    strategy: Option<Strategy>,
    config: PoolConfig,
    seed: u64,
    lhs: Option<LhsSelector>,
    representations: Option<Vec<SparseVec>>,
    obs: SessionObs,
    _stage: PhantomData<Stage>,
}

impl<M: Model, Stage> SessionBuilder<M, Stage> {
    fn advance<Next>(self) -> SessionBuilder<M, Next> {
        SessionBuilder {
            model: self.model,
            samples: self.samples,
            oracle_labels: self.oracle_labels,
            test_samples: self.test_samples,
            test_labels: self.test_labels,
            oracle: self.oracle,
            strategy: self.strategy,
            config: self.config,
            seed: self.seed,
            lhs: self.lhs,
            representations: self.representations,
            obs: self.obs,
            _stage: PhantomData,
        }
    }
}

impl<M: Model> SessionBuilder<M, NeedsPool> {
    pub(crate) fn start(model: M) -> SessionBuilder<M, NeedsPool> {
        SessionBuilder {
            model,
            samples: Vec::new(),
            oracle_labels: Vec::new(),
            test_samples: Vec::new(),
            test_labels: Vec::new(),
            oracle: None,
            strategy: None,
            config: PoolConfig::default(),
            seed: 0,
            lhs: None,
            representations: None,
            obs: SessionObs::default(),
            _stage: PhantomData,
        }
    }

    /// The unlabeled pool and its hidden oracle labels (`labels[i]` is
    /// revealed when sample `i` is "annotated").
    pub fn pool(
        mut self,
        samples: Vec<M::Sample>,
        oracle_labels: Vec<M::Label>,
    ) -> SessionBuilder<M, NeedsTest> {
        assert_eq!(
            samples.len(),
            oracle_labels.len(),
            "pool samples/labels misaligned"
        );
        self.samples = samples;
        self.oracle_labels = oracle_labels;
        self.advance()
    }

    /// The unlabeled pool with a custom labeling [`Oracle`] instead of
    /// up-front hidden labels: `oracle.annotate(id, sample)` is queried
    /// when sample `id` is selected (and for the initial random set).
    pub fn pool_with_oracle(
        mut self,
        samples: Vec<M::Sample>,
        oracle: Box<dyn Oracle<M>>,
    ) -> SessionBuilder<M, NeedsTest> {
        self.samples = samples;
        self.oracle = Some(oracle);
        self.advance()
    }
}

impl<M: Model> SessionBuilder<M, NeedsTest> {
    /// The held-out test split the learning curve is measured on.
    pub fn test(
        mut self,
        samples: Vec<M::Sample>,
        labels: Vec<M::Label>,
    ) -> SessionBuilder<M, NeedsStrategy> {
        assert_eq!(
            samples.len(),
            labels.len(),
            "test samples/labels misaligned"
        );
        self.test_samples = samples;
        self.test_labels = labels;
        self.advance()
    }
}

impl<M: Model> SessionBuilder<M, NeedsStrategy> {
    /// The query strategy (base + history policy + combinators).
    pub fn strategy(mut self, strategy: Strategy) -> SessionBuilder<M, Ready> {
        self.strategy = Some(strategy);
        self.advance()
    }
}

impl<M: Model> SessionBuilder<M, Ready> {
    /// RNG seed making the whole run deterministic (default `0`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Loop configuration (default [`PoolConfig::default`]).
    pub fn config(mut self, config: PoolConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        self.config = config;
        self
    }

    /// Attach a trained LHS selector; selection then ranks a candidate
    /// set with the learned ranker instead of sorting by the history
    /// policy.
    pub fn lhs(mut self, lhs: LhsSelector) -> Self {
        self.lhs = Some(lhs);
        self
    }

    /// Sparse representations enabling the density / MMR / k-center
    /// combinators. `reps[i]` must describe pool sample `i`.
    pub fn representations(mut self, reps: Vec<SparseVec>) -> Self {
        assert_eq!(
            reps.len(),
            self.samples.len(),
            "one representation per pool sample"
        );
        self.representations = Some(reps);
        self
    }

    /// Session-owned tracing subscriber. Receives this session's spans
    /// and events regardless of (and instead of) the global dispatch.
    pub fn subscriber(mut self, subscriber: Arc<dyn Subscriber>) -> Self {
        self.obs.subscriber = Some(subscriber);
        self
    }

    /// Metrics registry accumulating the session's phase-timing
    /// histograms and counters.
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.obs.metrics = Some(metrics);
        self
    }

    /// Crash-safe per-round journaling. Each completed round appends one
    /// [`RoundJournalRecord`]; a journal write failure aborts the run
    /// with [`crate::error::ErrorKind::Journal`].
    pub fn journal(mut self, journal: RunJournal) -> Self {
        self.obs.journal = Some(Arc::new(journal));
        self
    }

    /// Construct an interactive [`Session`] instead of a batch
    /// [`ActiveLearner`]: the same pipeline, but the caller drives the
    /// annotate boundary through `step`/`submit` tickets (see
    /// [`crate::live`]). A session built with [`pool`] hidden labels can
    /// answer its own tickets ([`Session::answer_from_hidden`]); one
    /// built with [`pool_with_oracle`] ignores the oracle — the whole
    /// point of the interactive form is that labels arrive from outside.
    ///
    /// [`pool`]: SessionBuilder::pool
    /// [`pool_with_oracle`]: SessionBuilder::pool_with_oracle
    pub fn build_session(self) -> Session<M> {
        let hidden = if self.oracle.is_none() {
            Some(self.oracle_labels)
        } else {
            None
        };
        Session::from_parts(
            self.model,
            self.samples,
            hidden,
            self.test_samples,
            self.test_labels,
            self.strategy.expect("strategy set by typestate"),
            self.lhs,
            self.config,
            self.representations,
            self.seed,
            self.obs,
        )
    }

    /// Rebuild a session from a [`SessionSnapshot`], replaying its label
    /// events through the deterministic pipeline. The builder must carry
    /// the *same* configuration the snapshot was taken from (enforced via
    /// the snapshot's config hash → [`ErrorKind::Conflict`] on mismatch);
    /// the restored session is then byte-identical to the one that was
    /// snapshotted — same RNG position, same pool, same pending ticket
    /// with the same partially-received labels.
    ///
    /// [`ErrorKind::Conflict`]: crate::error::ErrorKind::Conflict
    pub fn restore(self, snapshot: &SessionSnapshot<M::Label>) -> Result<Session<M>, Error>
    where
        M::Label: PartialEq,
    {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(Error::conflict(format!(
                "snapshot version {} is not the supported version {SNAPSHOT_VERSION}",
                snapshot.version
            )));
        }
        let mut session = self.build_session();
        if snapshot.config_hash != session.config_hash() {
            return Err(Error::conflict(format!(
                "snapshot config hash {:#x} does not match this configuration ({:#x})",
                snapshot.config_hash,
                session.config_hash()
            )));
        }
        for ticket in &snapshot.tickets {
            match session.step()? {
                SessionStep::AwaitingLabels => {}
                SessionStep::Done => {
                    return Err(Error::conflict(
                        "snapshot carries more fulfilled tickets than this \
                         configuration can replay",
                    ))
                }
            }
            let pending = session
                .pending()
                .expect("awaiting session has a pending request")
                .ticket;
            if pending != ticket.ticket {
                return Err(Error::conflict(format!(
                    "snapshot ticket {} does not line up with replayed ticket {pending}",
                    ticket.ticket
                )));
            }
            session.submit(&LabelResponse {
                ticket: ticket.ticket,
                labels: ticket.labels.clone(),
            })?;
        }
        // Park on the next ticket and re-deliver the labels that had
        // already arrived for it.
        if !snapshot.partial.is_empty() {
            session.step()?;
            let ticket = session.pending().map(|p| p.ticket).ok_or_else(|| {
                Error::conflict(
                    "snapshot carries partial labels but the replayed session \
                         has no pending ticket",
                )
            })?;
            session.submit(&LabelResponse {
                ticket,
                labels: snapshot.partial.clone(),
            })?;
        }
        Ok(session)
    }

    /// Construct the learner.
    pub fn build(self) -> ActiveLearner<M> {
        let annotate = match self.oracle {
            Some(oracle) => OracleAnnotate::new(oracle),
            None => OracleAnnotate::hidden(self.oracle_labels),
        };
        ActiveLearner::from_parts(
            self.model,
            self.samples,
            Box::new(annotate),
            self.test_samples,
            self.test_labels,
            self.strategy.expect("strategy set by typestate"),
            self.lhs,
            self.config,
            self.representations,
            ChaCha8Rng::seed_from_u64(self.seed),
            self.seed,
            self.obs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_boundaries() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_ne!(fingerprint(&[]), fingerprint(&[""]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
    }
}

//! The pool-based active learning driver.
//!
//! [`ActiveLearner`] owns the pool, the oracle labels, the test split, the
//! underlying model, the [`HistoryStore`], and a [`Strategy`], and runs
//! the iterative select–annotate–retrain loop of §2. It is generic over
//! [`Model`], so the same driver executes both the text-classification
//! and NER experiments (and user-provided models).

use std::collections::VecDeque;

use rand::prelude::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use histal_text::{PoolGeometry, SparseVec};
use histal_tseries::{exp_weighted_sum, window_variance};

use histal_obs::trace::Level;
use histal_obs::{session_event, session_span};

use crate::error::Error;
use crate::eval::SampleEval;
use crate::history::HistoryStore;
use crate::lhs::LhsSelector;
use crate::model::Model;
use crate::session::{NeedsPool, SessionBuilder, SessionObs};
use crate::stopping::{StopReason, StoppingRule};
use crate::strategy::combinators::{apply_density, kcenter_select, mmr_select, SimScratch};
use crate::strategy::Strategy;

/// Static configuration of an active-learning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Samples annotated per round.
    pub batch_size: usize,
    /// Number of selection rounds (the curve gets `rounds + 1` points).
    pub rounds: usize,
    /// Size of the random initial labeled set `s₀`.
    pub init_labeled: usize,
    /// Optional cap on retained history length (`O(l·N)` memory mode).
    pub history_max_len: Option<usize>,
    /// Return the full per-sample history matrix in
    /// [`RunResult::history`] (off by default — it is `O(rounds · N)`).
    pub record_history: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            batch_size: 25,
            rounds: 20,
            init_labeled: 25,
            history_max_len: None,
            record_history: false,
        }
    }
}

/// One point of the learning curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Labeled-set size when the metric was measured.
    pub n_labeled: usize,
    /// Test metric after training on that labeled set.
    pub metric: f64,
}

/// Per-round bookkeeping, including the Table 6 diagnostics and the
/// wall-clock breakdown behind the Table 2 efficiency argument.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Pool ids selected this round.
    pub selected: Vec<usize>,
    /// Mean WSHS score (window 3) of the selected samples at selection
    /// time — the quantity reported in Table 6.
    pub mean_wshs_of_selected: f64,
    /// Mean history fluctuation (window-3 variance) of the selected
    /// samples — the FHS column of Table 6.
    pub mean_fluct_of_selected: f64,
    /// Time spent training the model this round (milliseconds).
    pub fit_ms: f64,
    /// Time spent evaluating the unlabeled pool — the `O(T)` cost every
    /// strategy pays (milliseconds).
    pub eval_ms: f64,
    /// Time spent scoring: base scores, history folding, and density
    /// weighting — the per-sample cost the history-aware strategies add
    /// (milliseconds).
    #[serde(default)]
    pub score_ms: f64,
    /// Time spent selecting the batch from the final scores (top-k, MMR,
    /// k-center or LHS ranking; milliseconds).
    pub select_ms: f64,
}

/// The output of a full run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Human-readable strategy name (e.g. `"WSHS(entropy)"`, `"LHS(LC)"`).
    pub strategy_name: String,
    /// Learning curve: metric after the initial set, then after each batch.
    pub curve: Vec<CurvePoint>,
    /// Per-round selections and diagnostics.
    pub rounds: Vec<RoundRecord>,
    /// Per-sample historical evaluation sequences (indexed by pool id;
    /// a sample's sequence stops growing once it is labeled). Empty
    /// unless [`PoolConfig::record_history`] was set.
    #[serde(default)]
    pub history: Vec<Vec<f64>>,
}

impl RunResult {
    /// Metric at the largest labeled-set size, or `None` for a run whose
    /// curve is empty (previously this returned `0.0`, which silently
    /// read as "the model learned nothing" instead of "nothing ran").
    pub fn final_metric(&self) -> Option<f64> {
        self.curve.last().map(|p| p.metric)
    }
}

/// Diagnostic window used for the Table 6 statistics.
const DIAG_WINDOW: usize = 3;

/// A pool-based active learner (problem setting of §2, Figure 1).
pub struct ActiveLearner<M: Model> {
    model: M,
    samples: Vec<M::Sample>,
    oracle_labels: Vec<M::Label>,
    test_samples: Vec<M::Sample>,
    test_labels: Vec<M::Label>,
    strategy: Strategy,
    lhs: Option<LhsSelector>,
    config: PoolConfig,
    /// Optional sparse representations for density/MMR combinators.
    representations: Option<Vec<SparseVec>>,
    rng: ChaCha8Rng,
    seed: u64,
    obs: SessionObs,
}

impl<M: Model> ActiveLearner<M> {
    /// Start building a session: `ActiveLearner::builder(model)
    /// .pool(..).test(..).strategy(..).build()`. The builder enforces the
    /// required inputs at compile time and names the optional ones — see
    /// [`SessionBuilder`].
    pub fn builder(model: M) -> SessionBuilder<M, NeedsPool> {
        SessionBuilder::start(model)
    }

    /// All-fields constructor the builder lowers into; keeps the struct's
    /// fields private to this crate.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        model: M,
        samples: Vec<M::Sample>,
        oracle_labels: Vec<M::Label>,
        test_samples: Vec<M::Sample>,
        test_labels: Vec<M::Label>,
        strategy: Strategy,
        lhs: Option<LhsSelector>,
        config: PoolConfig,
        representations: Option<Vec<SparseVec>>,
        rng: ChaCha8Rng,
        seed: u64,
        obs: SessionObs,
    ) -> Self {
        Self {
            model,
            samples,
            oracle_labels,
            test_samples,
            test_labels,
            strategy,
            lhs,
            config,
            representations,
            rng,
            seed,
            obs,
        }
    }

    /// Create a learner over a pool with hidden oracle labels and a fixed
    /// test split. `seed` makes the whole run deterministic.
    #[deprecated(
        since = "0.1.0",
        note = "use `ActiveLearner::builder(model).pool(..).test(..).strategy(..)`"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: M,
        samples: Vec<M::Sample>,
        oracle_labels: Vec<M::Label>,
        test_samples: Vec<M::Sample>,
        test_labels: Vec<M::Label>,
        strategy: Strategy,
        config: PoolConfig,
        seed: u64,
    ) -> Self {
        ActiveLearner::builder(model)
            .pool(samples, oracle_labels)
            .test(test_samples, test_labels)
            .strategy(strategy)
            .config(config)
            .seed(seed)
            .build()
    }

    /// Attach a trained LHS selector; selection then ranks a candidate set
    /// with the learned ranker instead of sorting by the history policy.
    #[deprecated(since = "0.1.0", note = "use `SessionBuilder::lhs`")]
    pub fn with_lhs(mut self, lhs: LhsSelector) -> Self {
        self.lhs = Some(lhs);
        self
    }

    /// Attach sparse representations enabling the density / MMR
    /// combinators. `reps[i]` must describe pool sample `i`.
    #[deprecated(since = "0.1.0", note = "use `SessionBuilder::representations`")]
    pub fn with_representations(mut self, reps: Vec<SparseVec>) -> Self {
        assert_eq!(
            reps.len(),
            self.samples.len(),
            "one representation per pool sample"
        );
        self.representations = Some(reps);
        self
    }

    /// Run the full loop. Returns an error if the strategy requires a
    /// capability the model does not provide, or if the run journal
    /// cannot be written.
    pub fn run(&mut self) -> Result<RunResult, Error> {
        self.run_until(&StoppingRule::none())
            .map(|(result, _)| result)
    }

    /// Run until the configured rounds complete or `rule` fires, whichever
    /// comes first. Returns the run and why it stopped.
    pub fn run_until(&mut self, rule: &StoppingRule) -> Result<(RunResult, StopReason), Error> {
        let n = self.samples.len();
        let _run_span = session_span!(
            self.obs.subscriber(),
            Level::Info,
            "al.run",
            strategy = self.strategy.name(),
            pool = n,
            rounds = self.config.rounds,
            batch = self.config.batch_size,
            seed = self.seed,
        );
        let mut history = match self.config.history_max_len {
            Some(cap) => HistoryStore::with_max_len(n, cap),
            None => HistoryStore::new(n),
        };
        // Rolling trackers make the per-round history fold O(1) per
        // sample. HKLD replaces the scalar fold entirely, and a
        // degenerate zero window (e.g. HUS with k = 0) falls back to the
        // from-scratch slice path below.
        if self.strategy.hkld.is_none() {
            let window = self.strategy.history.window();
            if window > 0 {
                history = history.with_rolling(window);
            }
        }
        // Pre-normalized pool geometry for the similarity combinators:
        // cached norms and CSR storage, built once per run instead of
        // recomputing norms inside every cosine.
        let geometry: Option<PoolGeometry> = self.representations.as_ref().and_then(|reps| {
            let needed = self.strategy.density.is_some()
                || self.strategy.mmr.is_some()
                || self.strategy.kcenter;
            needed.then(|| PoolGeometry::build(reps))
        });
        let mut scratch = SimScratch::default();
        // Initial random labeled set s₀.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut self.rng);
        let init = self.config.init_labeled.min(n);
        let mut labeled: Vec<usize> = order[..init].to_vec();
        let mut is_labeled = vec![false; n];
        for &i in &labeled {
            is_labeled[i] = true;
        }

        let mut curve = Vec::with_capacity(self.config.rounds + 1);
        let mut rounds = Vec::with_capacity(self.config.rounds);
        let caps = self.strategy.base.caps();

        let needs_prob_history = self.strategy.hkld.is_some();
        let mut prob_history: Vec<VecDeque<Vec<f64>>> = if needs_prob_history {
            vec![VecDeque::new(); n]
        } else {
            Vec::new()
        };

        let mut stop_reason = StopReason::RoundsExhausted;
        // When the pool empties we have already recorded the metric for
        // the full labeled set this round; the post-loop record would
        // duplicate that curve point.
        let mut recorded_final = false;
        for round in 0..self.config.rounds {
            let _round_span = session_span!(
                self.obs.subscriber(),
                Level::Debug,
                "al.round",
                round = round,
                n_labeled = labeled.len(),
            );
            let fit_start = std::time::Instant::now();
            self.fit_and_record(&labeled, &mut curve);
            let fit_ms = fit_start.elapsed().as_secs_f64() * 1e3;
            if let Some(reason) = rule.should_stop(&curve) {
                stop_reason = reason;
                return Ok((self.finish(curve, rounds, history), stop_reason));
            }
            let unlabeled: Vec<usize> = (0..n).filter(|&i| !is_labeled[i]).collect();
            if unlabeled.is_empty() {
                stop_reason = StopReason::PoolExhausted;
                recorded_final = true;
                break;
            }
            // Evaluate the pool in parallel with per-sample deterministic
            // seeds, then score.
            let eval_start = std::time::Instant::now();
            let eval_span = session_span!(
                self.obs.subscriber(),
                Level::Debug,
                "al.eval",
                n_unlabeled = unlabeled.len(),
            );
            let evals: Vec<SampleEval> = unlabeled
                .par_iter()
                .map(|&id| {
                    let s = mix_seed(self.seed, round as u64, id as u64);
                    self.model.eval_sample(&self.samples[id], &caps, s)
                })
                .collect();
            drop(eval_span);
            let eval_ms = eval_start.elapsed().as_secs_f64() * 1e3;

            let score_start = std::time::Instant::now();
            let score_span = session_span!(self.obs.subscriber(), Level::Debug, "al.score");
            let mut base_scores = Vec::with_capacity(unlabeled.len());
            for eval in &evals {
                let r: f64 = self.rng.gen();
                base_scores.push(self.strategy.base.base_score(eval, r)?);
            }
            for (&id, &score) in unlabeled.iter().zip(&base_scores) {
                history.append(id, score);
            }
            if needs_prob_history {
                for (&id, eval) in unlabeled.iter().zip(&evals) {
                    let seq = &mut prob_history[id];
                    seq.push_back(eval.probs.clone());
                    if let Some(cap) = self.config.history_max_len {
                        if seq.len() > cap {
                            seq.pop_front();
                        }
                    }
                }
            }
            let mut final_scores: Vec<f64> = if let Some(k) = self.strategy.hkld {
                // HKLD (Davy & Luz 2007): the committee is the models of
                // the last k iterations; score = mean KL of each member's
                // posterior from the committee mean.
                unlabeled
                    .iter()
                    .map(|&id| {
                        let seq = &prob_history[id];
                        let start = seq.len().saturating_sub(k);
                        hkld_score_members(seq.iter().skip(start).map(|p| p.as_slice()))
                    })
                    .collect()
            } else {
                unlabeled
                    .iter()
                    .map(|&id| match history.rolling(id) {
                        Some(stats) => self.strategy.history.rolling_score(stats),
                        None => self.strategy.history.final_score(&history.seq(id).to_vec()),
                    })
                    .collect()
            };
            if let (Some(cfg), Some(geom)) = (&self.strategy.density, &geometry) {
                apply_density(
                    &mut final_scores,
                    &unlabeled,
                    geom,
                    cfg,
                    &mut self.rng,
                    &mut scratch,
                );
            }
            drop(score_span);
            let score_ms = score_start.elapsed().as_secs_f64() * 1e3;

            let pick_start = std::time::Instant::now();
            let select_span = session_span!(self.obs.subscriber(), Level::Debug, "al.select");
            let batch = self.config.batch_size.min(unlabeled.len());
            let picked_positions: Vec<usize> = if let Some(lhs) = &self.lhs {
                lhs.select(&unlabeled, &evals, &history, batch)
            } else if let (Some(cfg), Some(geom)) = (&self.strategy.mmr, &geometry) {
                mmr_select(&final_scores, &unlabeled, geom, batch, cfg, &mut scratch)
            } else if let (true, Some(geom)) = (self.strategy.kcenter, &geometry) {
                kcenter_select(&final_scores, &unlabeled, geom, batch, &mut scratch)
            } else {
                top_k(&final_scores, batch)
            };
            drop(select_span);
            let select_ms = pick_start.elapsed().as_secs_f64() * 1e3;

            let selected: Vec<usize> = picked_positions.iter().map(|&p| unlabeled[p]).collect();
            let (mean_wshs, mean_fluct) = selection_diagnostics(&selected, &history);
            for &id in &selected {
                is_labeled[id] = true;
                labeled.push(id);
            }
            let record = RoundRecord {
                round,
                selected,
                mean_wshs_of_selected: mean_wshs,
                mean_fluct_of_selected: mean_fluct,
                fit_ms,
                eval_ms,
                score_ms,
                select_ms,
            };
            self.observe_round(&record)?;
            rounds.push(record);
        }
        // Metric after the final batch.
        if !recorded_final {
            self.fit_and_record(&labeled, &mut curve);
        }
        if let Some(reason) = rule.should_stop(&curve) {
            stop_reason = reason;
        }
        Ok((self.finish(curve, rounds, history), stop_reason))
    }

    fn finish(
        &self,
        curve: Vec<CurvePoint>,
        rounds: Vec<RoundRecord>,
        history: HistoryStore,
    ) -> RunResult {
        let strategy_name = if self.lhs.is_some() {
            format!("LHS({})", self.strategy.base.name())
        } else {
            self.strategy.name()
        };
        let history = if self.config.record_history {
            history.into_sequences()
        } else {
            Vec::new()
        };
        RunResult {
            strategy_name,
            curve,
            rounds,
            history,
        }
    }

    /// Publish a completed round to the session's observability handles:
    /// a debug event, the phase-timing histograms (microsecond units so
    /// the log-bucket resolution is useful at sub-millisecond phases),
    /// and the crash-safe journal checkpoint.
    fn observe_round(&self, record: &RoundRecord) -> Result<(), Error> {
        session_event!(
            self.obs.subscriber(),
            Level::Debug,
            "al.round.complete",
            round = record.round,
            selected = record.selected.len(),
            fit_ms = record.fit_ms,
            eval_ms = record.eval_ms,
            score_ms = record.score_ms,
            select_ms = record.select_ms,
        );
        if let Some(metrics) = self.obs.metrics() {
            metrics.counter_add("al.rounds", 1);
            metrics.counter_add("al.selected", record.selected.len() as u64);
            metrics.histogram_record("al.fit_us", (record.fit_ms * 1e3) as u64);
            metrics.histogram_record("al.eval_us", (record.eval_ms * 1e3) as u64);
            metrics.histogram_record("al.score_us", (record.score_ms * 1e3) as u64);
            metrics.histogram_record("al.select_us", (record.select_ms * 1e3) as u64);
        }
        if let Some(journal) = self.obs.journal() {
            journal.record_round(record)?;
        }
        Ok(())
    }

    fn fit_and_record(&mut self, labeled: &[usize], curve: &mut Vec<CurvePoint>) {
        let _fit_span = session_span!(
            self.obs.subscriber(),
            Level::Debug,
            "al.fit",
            n_labeled = labeled.len(),
        );
        let samples: Vec<&M::Sample> = labeled.iter().map(|&i| &self.samples[i]).collect();
        let labels: Vec<&M::Label> = labeled.iter().map(|&i| &self.oracle_labels[i]).collect();
        self.model.fit(&samples, &labels, &mut self.rng);
        let test_s: Vec<&M::Sample> = self.test_samples.iter().collect();
        let test_l: Vec<&M::Label> = self.test_labels.iter().collect();
        let metric = self.model.metric(&test_s, &test_l);
        curve.push(CurvePoint {
            n_labeled: labeled.len(),
            metric,
        });
    }

    /// Consume the learner, returning the trained model (e.g. to inspect
    /// it after a run).
    pub fn into_model(self) -> M {
        self.model
    }
}

/// Positions of the `k` largest scores, best first.
///
/// Tie-breaking is part of the public contract (and pinned by a property
/// test in `tests/driver_props.rs`): **equal scores resolve toward the
/// lower index**, so a batch drawn from a pool of tied candidates is the
/// first `k` of them in pool order, independent of `k` and of any other
/// scores present. `NaN` scores compare equal to everything under this
/// comparator: an all-`NaN` (or otherwise constant) score vector
/// degrades to pool-order selection, and mixed `NaN`s still sort
/// deterministically for a given input rather than panicking or varying
/// by platform.
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Mix a run seed, round and sample id into an independent stream seed.
pub fn mix_seed(seed: u64, round: u64, id: u64) -> u64 {
    let mut h =
        seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ id.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// HKLD score: mean KL divergence of the last-`k` posteriors from their
/// mean. Returns 0 with fewer than two recorded posteriors.
pub fn hkld_score(prob_seq: &[Vec<f64>], k: usize) -> f64 {
    let start = prob_seq.len().saturating_sub(k);
    hkld_score_members(prob_seq[start..].iter().map(|p| p.as_slice()))
}

/// HKLD over an already-windowed committee, oldest first. Shared by the
/// slice entry point above and the driver's ring-buffered posterior
/// history (summation order must match the slice path bit-for-bit).
fn hkld_score_members<'a>(window: impl Iterator<Item = &'a [f64]>) -> f64 {
    let members: Vec<&[f64]> = window.filter(|p| !p.is_empty()).collect();
    if members.len() < 2 {
        return 0.0;
    }
    let dim = members[0].len();
    if members.iter().any(|p| p.len() != dim) {
        return 0.0;
    }
    let mut avg = vec![0.0; dim];
    for p in &members {
        for (a, v) in avg.iter_mut().zip(p.iter()) {
            *a += v;
        }
    }
    for a in &mut avg {
        *a /= members.len() as f64;
    }
    let kl = |p: &[f64], q: &[f64]| -> f64 {
        p.iter()
            .zip(q)
            .filter(|(&pi, _)| pi > 0.0)
            .map(|(&pi, &qi)| pi * (pi / qi.max(1e-12)).ln())
            .sum()
    };
    // Gibbs' inequality guarantees non-negativity; clamp away the
    // floating-point noise that can leave a tiny negative residue.
    (members.iter().map(|p| kl(p, &avg)).sum::<f64>() / members.len() as f64).max(0.0)
}

fn selection_diagnostics(selected: &[usize], history: &HistoryStore) -> (f64, f64) {
    if selected.is_empty() {
        return (0.0, 0.0);
    }
    let mut wshs = 0.0;
    let mut fluct = 0.0;
    let mut buf = Vec::new();
    for &id in selected {
        history.seq(id).copy_into(&mut buf);
        wshs += exp_weighted_sum(&buf, DIAG_WINDOW);
        fluct += window_variance(&buf, DIAG_WINDOW);
    }
    let n = selected.len() as f64;
    (wshs / n, fluct / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_descending() {
        assert_eq!(top_k(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
        assert_eq!(top_k(&[0.5, 0.5], 2), vec![0, 1]);
        assert_eq!(top_k(&[1.0], 5), vec![0]);
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn mix_seed_varies_by_all_inputs() {
        let base = mix_seed(1, 2, 3);
        assert_ne!(base, mix_seed(2, 2, 3));
        assert_ne!(base, mix_seed(1, 3, 3));
        assert_ne!(base, mix_seed(1, 2, 4));
        assert_eq!(base, mix_seed(1, 2, 3));
    }

    #[test]
    fn hkld_zero_for_insufficient_history() {
        assert_eq!(hkld_score(&[], 3), 0.0);
        assert_eq!(hkld_score(&[vec![0.5, 0.5]], 3), 0.0);
    }

    #[test]
    fn hkld_zero_for_agreeing_committee() {
        let seq = vec![vec![0.7, 0.3]; 4];
        assert!(hkld_score(&seq, 4).abs() < 1e-12);
    }

    #[test]
    fn hkld_positive_for_disagreement_and_uses_window() {
        let seq = vec![
            vec![0.99, 0.01], // outside window of k = 2
            vec![0.9, 0.1],
            vec![0.1, 0.9],
        ];
        let disagree = hkld_score(&seq, 2);
        assert!(disagree > 0.0);
        // Full window includes the extreme first posterior → larger KL.
        assert!(hkld_score(&seq, 3) > disagree);
    }

    #[test]
    fn hkld_tolerates_dimension_mismatch() {
        let seq = vec![vec![0.5, 0.5], vec![0.3, 0.3, 0.4]];
        assert_eq!(hkld_score(&seq, 2), 0.0);
    }

    #[test]
    fn diagnostics_empty_selection() {
        let h = HistoryStore::new(4);
        assert_eq!(selection_diagnostics(&[], &h), (0.0, 0.0));
    }

    #[test]
    fn diagnostics_average_over_selection() {
        let mut h = HistoryStore::new(2);
        for v in [0.0, 1.0, 0.0] {
            h.append(0, v);
        }
        for v in [0.5, 0.5, 0.5] {
            h.append(1, v);
        }
        let (w, f) = selection_diagnostics(&[0, 1], &h);
        let w_expected =
            (exp_weighted_sum(&[0.0, 1.0, 0.0], 3) + exp_weighted_sum(&[0.5, 0.5, 0.5], 3)) / 2.0;
        let f_expected = (window_variance(&[0.0, 1.0, 0.0], 3) + 0.0) / 2.0;
        assert!((w - w_expected).abs() < 1e-12);
        assert!((f - f_expected).abs() < 1e-12);
    }
}

//! The pool-based active learning driver.
//!
//! [`ActiveLearner`] owns the samples, the test split, the underlying
//! model and a [`Strategy`], and composes the staged round pipeline of
//! [`crate::pipeline`] over a first-class [`Pool`]: fit → eval → score →
//! fold history → select → annotate, repeated until the rounds are
//! exhausted or a [`StoppingRule`] fires. It is generic over [`Model`],
//! so the same driver executes both the text-classification and NER
//! experiments (and user-provided models).

use std::sync::Arc;

use rand::prelude::SliceRandom;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_text::{AnnConfig, LshIndex, NeighborIndex, PoolGeometry, SparseVec};
use histal_tseries::{exp_weighted_sum, window_variance};

use histal_obs::session_span;
use histal_obs::trace::Level;

use crate::error::Error;
use crate::history::HistoryStore;
use crate::lhs::LhsSelector;
use crate::model::Model;
use crate::pipeline::{
    Annotate, BaseScore, EvalPool, Fit, FoldHistory, HkldFold, KCenterSelect, LhsSelect, MmrSelect,
    ParallelEval, PolicyFold, RetrainFit, RoundCtx, ScoreBase, Select, SelectCtx, TopKSelect,
};
use crate::pool::{Pool, SampleId};
use crate::session::{NeedsPool, SessionBuilder, SessionObs};
use crate::stopping::{StopReason, StoppingRule};
use crate::strategy::combinators::apply_density;
use crate::strategy::Strategy;

/// Static configuration of an active-learning run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Samples annotated per round.
    pub batch_size: usize,
    /// Number of selection rounds (the curve gets `rounds + 1` points).
    pub rounds: usize,
    /// Size of the random initial labeled set `s₀`.
    pub init_labeled: usize,
    /// Optional cap on retained history length (`O(l·N)` memory mode).
    pub history_max_len: Option<usize>,
    /// Return the full per-sample history matrix in
    /// [`RunResult::history`] (off by default — it is `O(rounds · N)`).
    pub record_history: bool,
    /// Approximate-neighbor settings for the similarity combinators.
    /// `None` (the default) keeps the exhaustive exact sweeps —
    /// byte-identical results to every pre-ANN release; `Some` builds one
    /// seeded [`LshIndex`] per run and routes density/MMR/k-center
    /// neighbor queries through it.
    #[serde(default)]
    pub ann: Option<AnnConfig>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            batch_size: 25,
            rounds: 20,
            init_labeled: 25,
            history_max_len: None,
            record_history: false,
            ann: None,
        }
    }
}

/// One point of the learning curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Labeled-set size when the metric was measured.
    pub n_labeled: usize,
    /// Test metric after training on that labeled set.
    pub metric: f64,
}

/// Per-round bookkeeping, including the Table 6 diagnostics and the
/// wall-clock breakdown behind the Table 2 efficiency argument.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Pool ids selected this round.
    pub selected: Vec<usize>,
    /// Mean WSHS score (window 3) of the selected samples at selection
    /// time — the quantity reported in Table 6.
    pub mean_wshs_of_selected: f64,
    /// Mean history fluctuation (window-3 variance) of the selected
    /// samples — the FHS column of Table 6.
    pub mean_fluct_of_selected: f64,
    /// Time spent training the model this round (milliseconds).
    pub fit_ms: f64,
    /// Time spent evaluating the unlabeled pool — the `O(T)` cost every
    /// strategy pays (milliseconds).
    pub eval_ms: f64,
    /// Time spent scoring: base scores, history folding, and density
    /// weighting — the per-sample cost the history-aware strategies add
    /// (milliseconds).
    #[serde(default)]
    pub score_ms: f64,
    /// Time spent selecting the batch from the final scores (top-k, MMR,
    /// k-center or LHS ranking; milliseconds).
    pub select_ms: f64,
}

/// The output of a full run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Human-readable strategy name (e.g. `"WSHS(entropy)"`, `"LHS(LC)"`).
    pub strategy_name: String,
    /// Learning curve: metric after the initial set, then after each batch.
    pub curve: Vec<CurvePoint>,
    /// Per-round selections and diagnostics.
    pub rounds: Vec<RoundRecord>,
    /// Per-sample historical evaluation sequences (indexed by pool id;
    /// a sample's sequence stops growing once it is labeled). Empty
    /// unless [`PoolConfig::record_history`] was set.
    #[serde(default)]
    pub history: Vec<Vec<f64>>,
}

impl RunResult {
    /// Metric at the largest labeled-set size, or `None` for a run whose
    /// curve is empty (previously this returned `0.0`, which silently
    /// read as "the model learned nothing" instead of "nothing ran").
    pub fn final_metric(&self) -> Option<f64> {
        self.curve.last().map(|p| p.metric)
    }
}

/// Diagnostic window used for the Table 6 statistics.
const DIAG_WINDOW: usize = 3;

/// A pool-based active learner (problem setting of §2, Figure 1).
///
/// Construction goes through [`ActiveLearner::builder`]; the loop itself
/// is the stage composition in [`ActiveLearner::run_until`].
pub struct ActiveLearner<M: Model> {
    model: M,
    samples: Vec<M::Sample>,
    /// Labels revealed by the [`Annotate`] stage, indexed by sample id.
    /// `Some` exactly for ids on the pool's labeled side.
    revealed: Vec<Option<M::Label>>,
    test_samples: Vec<M::Sample>,
    test_labels: Vec<M::Label>,
    strategy: Strategy,
    /// Shared trained selector: the `Select` stage borrows this via
    /// [`Arc`] each run instead of deep-cloning the trained ensemble.
    lhs: Option<Arc<LhsSelector>>,
    config: PoolConfig,
    /// Optional sparse representations for density/MMR combinators.
    representations: Option<Vec<SparseVec>>,
    rng: ChaCha8Rng,
    seed: u64,
    obs: SessionObs,
    fit_stage: Box<dyn Fit<M>>,
    eval_stage: Box<dyn EvalPool<M>>,
    annotate_stage: Box<dyn Annotate<M>>,
}

impl<M: Model> ActiveLearner<M> {
    /// Start building a session: `ActiveLearner::builder(model)
    /// .pool(..).test(..).strategy(..).build()`. The builder enforces the
    /// required inputs at compile time and names the optional ones — see
    /// [`SessionBuilder`].
    pub fn builder(model: M) -> SessionBuilder<M, NeedsPool> {
        SessionBuilder::start(model)
    }

    /// All-fields constructor the builder lowers into; keeps the struct's
    /// fields private to this crate.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        model: M,
        samples: Vec<M::Sample>,
        annotate_stage: Box<dyn Annotate<M>>,
        test_samples: Vec<M::Sample>,
        test_labels: Vec<M::Label>,
        strategy: Strategy,
        lhs: Option<LhsSelector>,
        config: PoolConfig,
        representations: Option<Vec<SparseVec>>,
        rng: ChaCha8Rng,
        seed: u64,
        obs: SessionObs,
    ) -> Self {
        let revealed = (0..samples.len()).map(|_| None).collect();
        Self {
            model,
            samples,
            revealed,
            test_samples,
            test_labels,
            strategy,
            lhs: lhs.map(Arc::new),
            config,
            representations,
            rng,
            seed,
            obs,
            fit_stage: Box::new(RetrainFit),
            eval_stage: Box::new(ParallelEval),
            annotate_stage,
        }
    }

    /// Run the full loop. Returns an error if the strategy requires a
    /// capability the model does not provide, or if the run journal
    /// cannot be written.
    pub fn run(&mut self) -> Result<RunResult, Error> {
        self.run_until(&StoppingRule::none())
            .map(|(result, _)| result)
    }

    /// Run until the configured rounds complete or `rule` fires, whichever
    /// comes first. Returns the run and why it stopped.
    ///
    /// This is a thin composition of the [`crate::pipeline`] stages: each
    /// round runs fit → eval → score/fold → select → annotate, with the
    /// per-stage wall-clock captured in [`RoundCtx`] and copied onto the
    /// round's [`RoundRecord`].
    pub fn run_until(&mut self, rule: &StoppingRule) -> Result<(RunResult, StopReason), Error> {
        let n = self.samples.len();
        let _run_span = session_span!(
            self.obs.subscriber(),
            Level::Info,
            "al.run",
            strategy = self.strategy.name(),
            pool = n,
            rounds = self.config.rounds,
            batch = self.config.batch_size,
            seed = self.seed,
        );
        let mut history = match self.config.history_max_len {
            Some(cap) => HistoryStore::with_max_len(n, cap),
            None => HistoryStore::new(n),
        };
        // Rolling trackers make the per-round history fold O(1) per
        // sample. HKLD replaces the scalar fold entirely, and a
        // degenerate zero window (e.g. HUS with k = 0) falls back to the
        // borrowed-segment slice path.
        if self.strategy.hkld.is_none() {
            let window = self.strategy.history.window();
            if window > 0 {
                history = history.with_rolling(window);
            }
        }
        // Pre-normalized pool geometry for the similarity combinators:
        // cached norms and CSR storage, built once per run instead of
        // recomputing norms inside every cosine.
        let geometry: Option<PoolGeometry> = self.representations.as_ref().and_then(|reps| {
            let needed = self.strategy.density.is_some()
                || self.strategy.mmr.is_some()
                || self.strategy.kcenter;
            needed.then(|| PoolGeometry::build(reps))
        });
        // ANN index over the same rows, built once per run from its own
        // seed stream. `ann: None` skips this entirely and every
        // combinator below runs its exact path.
        let ann_index: Option<LshIndex> = match (&self.config.ann, &geometry) {
            (Some(cfg), Some(geom)) => {
                Some(LshIndex::build(geom, cfg, mix_seed(self.seed, 0xA11, 0)))
            }
            _ => None,
        };
        let neighbor_index: Option<&dyn NeighborIndex> =
            ann_index.as_ref().map(|i| i as &dyn NeighborIndex);
        let mut ctx = RoundCtx::new();

        // Assemble the per-run stages. Fit/eval/annotate live on the
        // learner (they persist oracle state across runs); scoring,
        // folding and selection are chosen here from the strategy.
        let mut score_stage = BaseScore {
            base: self.strategy.base,
        };
        let mut fold_stage: Box<dyn FoldHistory> = match self.strategy.hkld {
            Some(k) => Box::new(HkldFold::new(k, n, self.config.history_max_len)),
            None => Box::new(PolicyFold::new(self.strategy.history)),
        };
        let mut select_stage: Box<dyn Select> = if let Some(lhs) = &self.lhs {
            Box::new(LhsSelect(Arc::clone(lhs)))
        } else if let (Some(cfg), true) = (self.strategy.mmr, geometry.is_some()) {
            Box::new(MmrSelect(cfg))
        } else if self.strategy.kcenter && geometry.is_some() {
            Box::new(KCenterSelect)
        } else {
            Box::new(TopKSelect)
        };

        // Initial random labeled set s₀, annotated through the oracle.
        let mut pool = Pool::new(n);
        let mut order: Vec<SampleId> = (0..n).collect();
        order.shuffle(&mut self.rng);
        let init = self.config.init_labeled.min(n);
        self.annotate_stage
            .annotate(&order[..init], &self.samples, &mut pool, &mut self.revealed);

        let mut curve = Vec::with_capacity(self.config.rounds + 1);
        let mut rounds = Vec::with_capacity(self.config.rounds);
        // The base strategy declares its own needs; side-channel consumers
        // (HKLD reads posteriors, LHS features read entropy and optionally
        // posteriors) widen the request so the model computes exactly what
        // this run's stages will observe — and nothing more.
        let mut caps = self.strategy.base.caps();
        if self.strategy.hkld.is_some() {
            caps.probs = true;
        }
        if let Some(lhs) = &self.lhs {
            caps.entropy = true;
            caps.probs = caps.probs || lhs.needs_probs();
        }

        let mut stop_reason = StopReason::RoundsExhausted;
        // When the pool empties we have already recorded the metric for
        // the full labeled set this round; the post-loop record would
        // duplicate that curve point.
        let mut recorded_final = false;
        for round in 0..self.config.rounds {
            ctx.begin(round);
            let _round_span = session_span!(
                self.obs.subscriber(),
                Level::Debug,
                "al.round",
                round = round,
                n_labeled = pool.n_labeled(),
            );
            let fit_start = std::time::Instant::now();
            self.fit_and_record(&pool, &mut curve);
            ctx.timers.fit_ms = fit_start.elapsed().as_secs_f64() * 1e3;
            if let Some(reason) = rule.should_stop(&curve) {
                stop_reason = reason;
                return Ok((self.finish(curve, rounds, history), stop_reason));
            }
            if pool.n_unlabeled() == 0 {
                stop_reason = StopReason::PoolExhausted;
                recorded_final = true;
                break;
            }
            // Evaluate the pool in parallel with per-sample deterministic
            // seeds.
            let eval_start = std::time::Instant::now();
            let eval_span = session_span!(
                self.obs.subscriber(),
                Level::Debug,
                "al.eval",
                n_unlabeled = pool.n_unlabeled(),
            );
            self.eval_stage.eval(
                &self.model,
                &self.samples,
                pool.unlabeled(),
                &caps,
                self.seed,
                round,
                &mut ctx.evals,
            );
            drop(eval_span);
            ctx.timers.eval_ms = eval_start.elapsed().as_secs_f64() * 1e3;

            // Base scores, history recording + folding, and density
            // weighting — together they are the "score" phase of the
            // Table 2 breakdown.
            let score_start = std::time::Instant::now();
            let score_span = session_span!(self.obs.subscriber(), Level::Debug, "al.score");
            score_stage.score(&ctx.evals, &mut self.rng, &mut ctx.base_scores)?;
            fold_stage.record(pool.unlabeled(), &ctx.base_scores, &ctx.evals, &mut history);
            fold_stage.fold(pool.unlabeled(), &history, &mut ctx.final_scores);
            if let (Some(cfg), Some(geom)) = (&self.strategy.density, &geometry) {
                apply_density(
                    &mut ctx.final_scores,
                    pool.unlabeled(),
                    geom,
                    neighbor_index,
                    cfg,
                    &mut self.rng,
                    &mut ctx.sim,
                );
            }
            drop(score_span);
            ctx.timers.score_ms = score_start.elapsed().as_secs_f64() * 1e3;

            let pick_start = std::time::Instant::now();
            let select_span = session_span!(self.obs.subscriber(), Level::Debug, "al.select");
            let batch = self.config.batch_size.min(pool.n_unlabeled());
            let picked_positions = select_stage.select(SelectCtx {
                scores: &ctx.final_scores,
                unlabeled: pool.unlabeled(),
                evals: &ctx.evals,
                history: &history,
                geometry: geometry.as_ref(),
                index: neighbor_index,
                batch,
                round,
                n_labeled: pool.n_labeled(),
                scratch: &mut ctx.sim,
                seq_buf: &mut ctx.seq_buf,
            });
            drop(select_span);
            ctx.timers.select_ms = pick_start.elapsed().as_secs_f64() * 1e3;

            let selected: Vec<SampleId> = picked_positions
                .iter()
                .map(|&p| pool.unlabeled()[p])
                .collect();
            let (mean_wshs, mean_fluct) =
                selection_diagnostics(&selected, &history, &mut ctx.seq_buf);
            self.annotate_stage
                .annotate(&selected, &self.samples, &mut pool, &mut self.revealed);
            let record = RoundRecord {
                round,
                selected,
                mean_wshs_of_selected: mean_wshs,
                mean_fluct_of_selected: mean_fluct,
                fit_ms: ctx.timers.fit_ms,
                eval_ms: ctx.timers.eval_ms,
                score_ms: ctx.timers.score_ms,
                select_ms: ctx.timers.select_ms,
            };
            self.observe_round(&record)?;
            rounds.push(record);
        }
        // Metric after the final batch.
        if !recorded_final {
            self.fit_and_record(&pool, &mut curve);
        }
        if let Some(reason) = rule.should_stop(&curve) {
            stop_reason = reason;
        }
        Ok((self.finish(curve, rounds, history), stop_reason))
    }

    fn finish(
        &self,
        curve: Vec<CurvePoint>,
        rounds: Vec<RoundRecord>,
        history: HistoryStore,
    ) -> RunResult {
        let strategy_name = if self.lhs.is_some() {
            format!("LHS({})", self.strategy.base.name())
        } else {
            self.strategy.name()
        };
        let history = if self.config.record_history {
            history.into_sequences()
        } else {
            Vec::new()
        };
        RunResult {
            strategy_name,
            curve,
            rounds,
            history,
        }
    }

    /// Publish a completed round to the session's observability handles
    /// (shared with the inverted-control [`crate::live::Session`], so
    /// both drivers emit identical events/metrics/journal lines).
    fn observe_round(&self, record: &RoundRecord) -> Result<(), Error> {
        self.obs.publish_round(record)
    }

    /// Run the [`Fit`] stage on the current labeled set (labeling order)
    /// and append the resulting curve point.
    fn fit_and_record(&mut self, pool: &Pool, curve: &mut Vec<CurvePoint>) {
        let _fit_span = session_span!(
            self.obs.subscriber(),
            Level::Debug,
            "al.fit",
            n_labeled = pool.n_labeled(),
        );
        let samples: Vec<&M::Sample> = pool.labeled().iter().map(|&i| &self.samples[i]).collect();
        let labels: Vec<&M::Label> = pool
            .labeled()
            .iter()
            .map(|&i| {
                self.revealed[i]
                    .as_ref()
                    .expect("labeled sample has a revealed label")
            })
            .collect();
        let test_s: Vec<&M::Sample> = self.test_samples.iter().collect();
        let test_l: Vec<&M::Label> = self.test_labels.iter().collect();
        let metric = self.fit_stage.fit_measure(
            &mut self.model,
            &samples,
            &labels,
            &test_s,
            &test_l,
            &mut self.rng,
        );
        curve.push(CurvePoint {
            n_labeled: pool.n_labeled(),
            metric,
        });
    }

    /// Consume the learner, returning the trained model (e.g. to inspect
    /// it after a run).
    pub fn into_model(self) -> M {
        self.model
    }
}

/// Positions of the `k` largest scores, best first.
///
/// Tie-breaking is part of the public contract (and pinned by a property
/// test in `tests/driver_props.rs`): **equal scores resolve toward the
/// lower index**, so a batch drawn from a pool of tied candidates is the
/// first `k` of them in pool order, independent of `k` and of any other
/// scores present. `NaN` scores sort after every real score (and among
/// themselves in pool order), keeping the comparator a total order: an
/// all-`NaN` (or otherwise constant) score vector degrades to
/// pool-order selection, and mixed `NaN`s sort deterministically rather
/// than panicking or varying by platform.
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    select_k(scores, k)
}

/// Bounded-heap partial selection: identical output to [`top_k`]
/// (`k` largest, best first, equal scores toward the lower index) in
/// `O(n log k)` instead of a full `O(n log n)` sort.
///
/// The heap holds the best `k` seen so far, keyed so its root is the
/// *worst* member; a candidate replaces the root only when it is
/// strictly better under the full (score desc, index asc) order, which
/// reproduces the sort's tie-breaks exactly. `NaN` scores need the
/// sort's explicit NaN-last total order, so any `NaN` input (and the
/// trivial `k ≥ n` case) falls back to the full sort — provable
/// equivalence beats a heap on inputs that are degenerate anyway. The
/// equivalence over all inputs, `NaN`s included, is pinned by a
/// property test in `tests/driver_props.rs`.
pub fn select_k(scores: &[f64], k: usize) -> Vec<usize> {
    if k == 0 || scores.is_empty() {
        return Vec::new();
    }
    if k >= scores.len() || scores.iter().any(|s| s.is_nan()) {
        return top_k_full_sort(scores, k);
    }

    /// Heap key ordered worst-first: lower score is greater, then higher
    /// index is greater — the reverse of the selection order, so the
    /// binary max-heap's root is the eviction candidate.
    #[derive(PartialEq)]
    struct WorstFirst {
        score: f64,
        idx: usize,
    }
    impl Eq for WorstFirst {}
    impl Ord for WorstFirst {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Scores are NaN-free here (guarded above), so partial_cmp
            // is a total order.
            other
                .score
                .partial_cmp(&self.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(self.idx.cmp(&other.idx))
        }
    }
    impl PartialOrd for WorstFirst {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::with_capacity(k);
    for (idx, &score) in scores.iter().enumerate() {
        let cand = WorstFirst { score, idx };
        if heap.len() < k {
            heap.push(cand);
        } else if let Some(mut worst) = heap.peek_mut() {
            // `cand < worst` ⇔ cand ranks better; on a score tie the
            // later index is "greater" (worse), so ties keep the
            // incumbent lower index — the top_k contract.
            if cand < *worst {
                *worst = cand;
            }
        }
    }
    // Ascending by worst-first order = best first.
    heap.into_sorted_vec().into_iter().map(|e| e.idx).collect()
}

/// The pre-heap implementation of [`top_k`]: full stable-order sort.
/// Kept as the fallback that defines the contract on degenerate inputs.
///
/// `NaN` is ordered explicitly (after every real score, pool order
/// among `NaN`s) because `partial_cmp → Equal` is not transitive on
/// mixed-`NaN` input and the standard sort is allowed to panic on a
/// non-total comparator.
fn top_k_full_sort(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        let (sa, sb) = (scores[a], scores[b]);
        match (sa.is_nan(), sb.is_nan()) {
            (true, true) | (false, false) => sb
                .partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b)),
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
        }
    });
    idx.truncate(k);
    idx
}

/// Mix a run seed, round and sample id into an independent stream seed.
pub fn mix_seed(seed: u64, round: u64, id: u64) -> u64 {
    let mut h =
        seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ id.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// HKLD score: mean KL divergence of the last-`k` posteriors from their
/// mean. Returns 0 with fewer than two recorded posteriors.
pub fn hkld_score(prob_seq: &[Vec<f64>], k: usize) -> f64 {
    let start = prob_seq.len().saturating_sub(k);
    hkld_score_members(prob_seq[start..].iter().map(|p| p.as_slice()))
}

/// HKLD over an already-windowed committee, oldest first. Shared by the
/// slice entry point above and the pipeline's ring-buffered posterior
/// history (summation order must match the slice path bit-for-bit).
pub(crate) fn hkld_score_members<'a>(window: impl Iterator<Item = &'a [f64]>) -> f64 {
    let members: Vec<&[f64]> = window.filter(|p| !p.is_empty()).collect();
    if members.len() < 2 {
        return 0.0;
    }
    let dim = members[0].len();
    if members.iter().any(|p| p.len() != dim) {
        return 0.0;
    }
    let mut avg = vec![0.0; dim];
    for p in &members {
        for (a, v) in avg.iter_mut().zip(p.iter()) {
            *a += v;
        }
    }
    for a in &mut avg {
        *a /= members.len() as f64;
    }
    let kl = |p: &[f64], q: &[f64]| -> f64 {
        p.iter()
            .zip(q)
            .filter(|(&pi, _)| pi > 0.0)
            .map(|(&pi, &qi)| pi * (pi / qi.max(1e-12)).ln())
            .sum()
    };
    // Gibbs' inequality guarantees non-negativity; clamp away the
    // floating-point noise that can leave a tiny negative residue.
    (members.iter().map(|p| kl(p, &avg)).sum::<f64>() / members.len() as f64).max(0.0)
}

pub(crate) fn selection_diagnostics(
    selected: &[usize],
    history: &HistoryStore,
    buf: &mut Vec<f64>,
) -> (f64, f64) {
    if selected.is_empty() {
        return (0.0, 0.0);
    }
    let mut wshs = 0.0;
    let mut fluct = 0.0;
    for &id in selected {
        history.seq(id).copy_into(buf);
        wshs += exp_weighted_sum(buf, DIAG_WINDOW);
        fluct += window_variance(buf, DIAG_WINDOW);
    }
    let n = selected.len() as f64;
    (wshs / n, fluct / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_descending() {
        assert_eq!(top_k(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
        assert_eq!(top_k(&[0.5, 0.5], 2), vec![0, 1]);
        assert_eq!(top_k(&[1.0], 5), vec![0]);
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn mix_seed_varies_by_all_inputs() {
        let base = mix_seed(1, 2, 3);
        assert_ne!(base, mix_seed(2, 2, 3));
        assert_ne!(base, mix_seed(1, 3, 3));
        assert_ne!(base, mix_seed(1, 2, 4));
        assert_eq!(base, mix_seed(1, 2, 3));
    }

    #[test]
    fn hkld_zero_for_insufficient_history() {
        assert_eq!(hkld_score(&[], 3), 0.0);
        assert_eq!(hkld_score(&[vec![0.5, 0.5]], 3), 0.0);
    }

    #[test]
    fn hkld_zero_for_agreeing_committee() {
        let seq = vec![vec![0.7, 0.3]; 4];
        assert!(hkld_score(&seq, 4).abs() < 1e-12);
    }

    #[test]
    fn hkld_positive_for_disagreement_and_uses_window() {
        let seq = vec![
            vec![0.99, 0.01], // outside window of k = 2
            vec![0.9, 0.1],
            vec![0.1, 0.9],
        ];
        let disagree = hkld_score(&seq, 2);
        assert!(disagree > 0.0);
        // Full window includes the extreme first posterior → larger KL.
        assert!(hkld_score(&seq, 3) > disagree);
    }

    #[test]
    fn hkld_tolerates_dimension_mismatch() {
        let seq = vec![vec![0.5, 0.5], vec![0.3, 0.3, 0.4]];
        assert_eq!(hkld_score(&seq, 2), 0.0);
    }

    #[test]
    fn diagnostics_empty_selection() {
        let h = HistoryStore::new(4);
        assert_eq!(selection_diagnostics(&[], &h, &mut Vec::new()), (0.0, 0.0));
    }

    #[test]
    fn diagnostics_average_over_selection() {
        let mut h = HistoryStore::new(2);
        for v in [0.0, 1.0, 0.0] {
            h.append(0, v);
        }
        for v in [0.5, 0.5, 0.5] {
            h.append(1, v);
        }
        let (w, f) = selection_diagnostics(&[0, 1], &h, &mut Vec::new());
        let w_expected =
            (exp_weighted_sum(&[0.0, 1.0, 0.0], 3) + exp_weighted_sum(&[0.5, 0.5, 0.5], 3)) / 2.0;
        let f_expected = (window_variance(&[0.0, 1.0, 0.0], 3) + 0.0) / 2.0;
        assert!((w - w_expected).abs() < 1e-12);
        assert!((f - f_expected).abs() < 1e-12);
    }
}

//! Per-sample evaluation outputs produced by the underlying model.
//!
//! Each active-learning iteration, the model evaluates every unlabeled
//! sample and emits a [`SampleEval`]. The cheap informative quantities
//! (posterior, entropy, least confidence) are always present; the
//! expensive ones (EGL, MC-dropout BALD, committee KL, MNLP) are computed
//! only when the strategy's [`EvalCaps`] requests them.

use serde::{Deserialize, Serialize};

/// Which optional (expensive) evaluation quantities the model must
/// compute. Derived from the strategy via
/// [`crate::strategy::BaseStrategy::caps`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalCaps {
    /// Expected gradient length over the whole parameter vector (Eq. 5).
    pub egl: bool,
    /// Max-over-words expected gradient on word-embedding blocks (Eq. 12).
    pub egl_word: bool,
    /// Bayesian uncertainty via MC-dropout (Gal et al. 2017).
    pub bald: bool,
    /// Maximum normalized log probability for sequence models (Eq. 13).
    pub mnlp: bool,
    /// Committee disagreement as mean KL divergence (Eq. 6).
    pub qbc: bool,
    /// Sequence-level top-2 margin (2-best Viterbi). Classification
    /// models derive margin from the posterior for free and ignore this.
    pub margin: bool,
    /// Per-token marginal entropy (backward pass for sequence models).
    /// Classification models compute entropy for free and ignore this;
    /// the CRF skips the backward lattice when it is unset.
    #[serde(default)]
    pub entropy: bool,
    /// Full posterior vector in [`SampleEval::probs`]. Set by consumers
    /// that read posteriors directly (HKLD committee, LHS posterior
    /// features) rather than through a base-strategy score.
    #[serde(default)]
    pub probs: bool,
}

impl EvalCaps {
    /// Union of two capability sets.
    pub fn union(self, other: EvalCaps) -> EvalCaps {
        EvalCaps {
            egl: self.egl || other.egl,
            egl_word: self.egl_word || other.egl_word,
            bald: self.bald || other.bald,
            mnlp: self.mnlp || other.mnlp,
            qbc: self.qbc || other.qbc,
            margin: self.margin || other.margin,
            entropy: self.entropy || other.entropy,
            probs: self.probs || other.probs,
        }
    }
}

/// Model outputs for one unlabeled sample in one iteration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleEval {
    /// Predicted class distribution. Classification models fill this;
    /// sequence models may leave it empty (their entropy/LC fields are
    /// sequence-level aggregates instead).
    pub probs: Vec<f64>,
    /// Entropy of the prediction (Eq. 4); for sequence models the mean
    /// per-token marginal entropy.
    pub entropy: f64,
    /// `1 − P(ŷ|x)` (Eq. 3); for sequence models `1 − P(best path)`.
    pub least_confidence: f64,
    /// Gap between top-2 class probabilities, as an *uncertainty* (1 − gap).
    pub margin: Option<f64>,
    /// Expected gradient length (Eq. 5).
    pub egl: Option<f64>,
    /// EGL of word embedding, max over words (Eq. 12).
    pub egl_word: Option<f64>,
    /// BALD mutual-information estimate.
    pub bald: Option<f64>,
    /// MNLP uncertainty `1 − max_y (1/n) Σ log P` (Eq. 13), shifted so
    /// larger = more uncertain.
    pub mnlp: Option<f64>,
    /// Mean KL divergence of committee members from the committee mean.
    pub qbc_kl: Option<f64>,
}

impl SampleEval {
    /// Build the always-present fields from a class posterior; optional
    /// fields start unset.
    pub fn from_probs(probs: Vec<f64>) -> Self {
        let entropy = entropy_of(&probs);
        let max_p = probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let least_confidence = if probs.is_empty() { 0.0 } else { 1.0 - max_p };
        let margin = margin_of(&probs);
        Self {
            probs,
            entropy,
            least_confidence,
            margin,
            ..Default::default()
        }
    }
}

/// Shannon entropy (natural log) of a distribution; `0 log 0 = 0`.
pub fn entropy_of(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Margin uncertainty `1 − (p₁ − p₂)`; `None` with fewer than two classes.
pub fn margin_of(probs: &[f64]) -> Option<f64> {
    if probs.len() < 2 {
        return None;
    }
    let (mut top, mut second) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &p in probs {
        if p > top {
            second = top;
            top = p;
        } else if p > second {
            second = p;
        }
    }
    Some(1.0 - (top - second))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_uniform_is_ln_k() {
        let e = entropy_of(&[0.25; 4]);
        assert!((e - (4f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_deterministic_is_zero() {
        assert_eq!(entropy_of(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_binary_half() {
        // The paper's running example: H(0.5, 0.5) = ln 2 ≈ 0.693.
        assert!((entropy_of(&[0.5, 0.5]) - (2f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn margin_basics() {
        assert!((margin_of(&[0.7, 0.3]).unwrap() - 0.6).abs() < 1e-12);
        assert!((margin_of(&[0.5, 0.5]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(margin_of(&[1.0]), None);
        assert_eq!(margin_of(&[]), None);
    }

    #[test]
    fn margin_finds_top_two_regardless_of_order() {
        let m = margin_of(&[0.1, 0.6, 0.3]).unwrap();
        assert!((m - (1.0 - 0.3)).abs() < 1e-12);
    }

    #[test]
    fn from_probs_fills_basics() {
        let e = SampleEval::from_probs(vec![0.8, 0.2]);
        assert!((e.least_confidence - 0.2).abs() < 1e-12);
        assert!(e.entropy > 0.0);
        assert!(e.margin.is_some());
        assert!(e.egl.is_none() && e.bald.is_none());
    }

    #[test]
    fn from_empty_probs_is_neutral() {
        let e = SampleEval::from_probs(vec![]);
        assert_eq!(e.entropy, 0.0);
        assert_eq!(e.least_confidence, 0.0);
        assert_eq!(e.margin, None);
    }

    #[test]
    fn caps_union() {
        let a = EvalCaps {
            egl: true,
            ..Default::default()
        };
        let b = EvalCaps {
            bald: true,
            ..Default::default()
        };
        let u = a.union(b);
        assert!(u.egl && u.bald && !u.mnlp);
    }
}

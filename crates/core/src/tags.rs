//! BIOES tag scheme for named entity recognition.
//!
//! The paper converts the CoNLL BIO annotations to BIOES (following Ma &
//! Hovy 2016). Labels are dense `u16` ids: id 0 is `O`, then four ids per
//! entity type in B, I, E, S order.

use serde::{Deserialize, Serialize};

/// Position of a token within an entity span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Position {
    /// Beginning of a multi-token entity.
    B,
    /// Inside a multi-token entity.
    I,
    /// End of a multi-token entity.
    E,
    /// Single-token entity.
    S,
}

/// A BIOES tag inventory over a fixed list of entity types.
///
/// ```
/// use histal_core::tags::TagScheme;
/// let scheme = TagScheme::conll(); // PER/ORG/LOC/MISC → 17 labels
/// let tags = scheme.bio_to_bioes(&["O", "B-PER", "I-PER"]);
/// assert_eq!(scheme.decode_spans(&tags), vec![(1, 2, 0)]);
/// assert_eq!(scheme.tag_name(tags[1]), "B-PER");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TagScheme {
    entity_types: Vec<String>,
}

impl TagScheme {
    /// Standard CoNLL inventory: PER, ORG, LOC, MISC.
    pub fn conll() -> Self {
        Self::new(["PER", "ORG", "LOC", "MISC"])
    }

    /// A scheme over arbitrary entity type names.
    pub fn new<I, S>(types: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let entity_types: Vec<String> = types.into_iter().map(Into::into).collect();
        assert!(
            !entity_types.is_empty(),
            "at least one entity type required"
        );
        Self { entity_types }
    }

    /// Total number of labels: `1 + 4 × types`.
    pub fn n_labels(&self) -> usize {
        1 + 4 * self.entity_types.len()
    }

    /// Number of entity types.
    pub fn n_types(&self) -> usize {
        self.entity_types.len()
    }

    /// The `O` (outside) tag id.
    pub fn outside(&self) -> u16 {
        0
    }

    /// Tag id for a position within entity type `ty`.
    ///
    /// # Panics
    /// Panics if `ty` is out of range.
    pub fn tag(&self, pos: Position, ty: usize) -> u16 {
        assert!(
            ty < self.entity_types.len(),
            "entity type {ty} out of range"
        );
        let offset = match pos {
            Position::B => 0,
            Position::I => 1,
            Position::E => 2,
            Position::S => 3,
        };
        (1 + 4 * ty + offset) as u16
    }

    /// Decompose a tag id into its position and type; `None` for `O`.
    pub fn parse(&self, tag: u16) -> Option<(Position, usize)> {
        if tag == 0 || (tag as usize) >= self.n_labels() {
            return None;
        }
        let idx = (tag - 1) as usize;
        let ty = idx / 4;
        let pos = match idx % 4 {
            0 => Position::B,
            1 => Position::I,
            2 => Position::E,
            _ => Position::S,
        };
        Some((pos, ty))
    }

    /// Human-readable tag string, e.g. `"B-PER"` or `"O"`.
    pub fn tag_name(&self, tag: u16) -> String {
        match self.parse(tag) {
            None => "O".to_string(),
            Some((pos, ty)) => {
                let p = match pos {
                    Position::B => "B",
                    Position::I => "I",
                    Position::E => "E",
                    Position::S => "S",
                };
                format!("{p}-{}", self.entity_types[ty])
            }
        }
    }

    /// Encode a span of `len` tokens of type `ty` as BIOES tags.
    pub fn encode_span(&self, len: usize, ty: usize) -> Vec<u16> {
        match len {
            0 => Vec::new(),
            1 => vec![self.tag(Position::S, ty)],
            _ => {
                let mut tags = Vec::with_capacity(len);
                tags.push(self.tag(Position::B, ty));
                for _ in 1..len - 1 {
                    tags.push(self.tag(Position::I, ty));
                }
                tags.push(self.tag(Position::E, ty));
                tags
            }
        }
    }

    /// Decode a tag sequence into `(start, end_inclusive, type)` spans.
    ///
    /// Tolerant of ill-formed sequences (as model output can be): a span
    /// is emitted for every maximal run of same-type non-`O` tags that
    /// *starts* at a `B`/`S` and for `S` singletons; dangling `I`/`E`
    /// without an opener are treated as openers (conventional lenient
    /// decoding, matching `conlleval`'s behaviour closely enough for
    /// relative comparisons).
    pub fn decode_spans(&self, tags: &[u16]) -> Vec<(usize, usize, usize)> {
        let mut spans = Vec::new();
        let mut open: Option<(usize, usize)> = None; // (start, ty)
        for (i, &t) in tags.iter().enumerate() {
            match self.parse(t) {
                None => {
                    if let Some((start, ty)) = open.take() {
                        spans.push((start, i - 1, ty));
                    }
                }
                Some((Position::B, ty)) => {
                    if let Some((start, prev_ty)) = open.take() {
                        spans.push((start, i - 1, prev_ty));
                    }
                    open = Some((i, ty));
                }
                Some((Position::S, ty)) => {
                    if let Some((start, prev_ty)) = open.take() {
                        spans.push((start, i - 1, prev_ty));
                    }
                    spans.push((i, i, ty));
                }
                Some((Position::I, ty)) => match open {
                    Some((_, prev_ty)) if prev_ty == ty => {}
                    _ => {
                        if let Some((start, prev_ty)) = open.take() {
                            spans.push((start, i - 1, prev_ty));
                        }
                        open = Some((i, ty));
                    }
                },
                Some((Position::E, ty)) => match open.take() {
                    Some((start, prev_ty)) if prev_ty == ty => {
                        spans.push((start, i, ty));
                    }
                    other => {
                        if let Some((start, prev_ty)) = other {
                            spans.push((start, i - 1, prev_ty));
                        }
                        spans.push((i, i, ty));
                    }
                },
            }
        }
        if let Some((start, ty)) = open {
            spans.push((start, tags.len() - 1, ty));
        }
        spans
    }
}

impl TagScheme {
    /// Convert a BIO tag-*string* sequence (`"B-PER"`, `"I-PER"`, `"O"`)
    /// into this scheme's BIOES ids — the preprocessing step the paper
    /// applies to the CoNLL corpora ("we convert its BIO tagging scheme
    /// into the BIOES tagging scheme", §5.1.2).
    ///
    /// Unknown entity types and malformed tags map to `O` (lenient, like
    /// the standard converters). A `B`/`I` token becomes `S`/`E` when the
    /// entity does not continue at the next position.
    pub fn bio_to_bioes(&self, bio: &[&str]) -> Vec<u16> {
        let parse = |t: &str| -> Option<(char, usize)> {
            let (prefix, ty) = t.split_once('-')?;
            let p = prefix.chars().next()?;
            let ty_idx = self.entity_types.iter().position(|e| e == ty)?;
            Some((p, ty_idx))
        };
        let n = bio.len();
        let mut out = vec![0u16; n];
        for i in 0..n {
            let Some((p, ty)) = parse(bio[i]) else {
                continue;
            };
            if p != 'B' && p != 'I' {
                continue;
            }
            // Does the same entity continue at i+1 (an I of the same type)?
            let continues =
                i + 1 < n && matches!(parse(bio[i + 1]), Some(('I', next_ty)) if next_ty == ty);
            // Is this the start of a span? (B always; I without a same-type
            // predecessor is a lenient start.)
            let starts = p == 'B'
                || i == 0
                || !matches!(parse(bio[i - 1]), Some((q, prev_ty)) if prev_ty == ty && (q == 'B' || q == 'I'));
            out[i] = match (starts, continues) {
                (true, true) => self.tag(Position::B, ty),
                (true, false) => self.tag(Position::S, ty),
                (false, true) => self.tag(Position::I, ty),
                (false, false) => self.tag(Position::E, ty),
            };
        }
        out
    }

    /// Convert BIOES ids back to BIO tag strings.
    pub fn bioes_to_bio(&self, tags: &[u16]) -> Vec<String> {
        tags.iter()
            .map(|&t| match self.parse(t) {
                None => "O".to_string(),
                Some((Position::B | Position::S, ty)) => format!("B-{}", self.entity_types[ty]),
                Some((Position::I | Position::E, ty)) => format!("I-{}", self.entity_types[ty]),
            })
            .collect()
    }

    /// The entity type names in id order.
    pub fn entity_types(&self) -> &[String] {
        &self.entity_types
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> TagScheme {
        TagScheme::conll()
    }

    #[test]
    fn label_count() {
        assert_eq!(scheme().n_labels(), 17);
    }

    #[test]
    fn tag_roundtrip() {
        let s = scheme();
        for ty in 0..s.n_types() {
            for pos in [Position::B, Position::I, Position::E, Position::S] {
                let t = s.tag(pos, ty);
                assert_eq!(s.parse(t), Some((pos, ty)));
            }
        }
        assert_eq!(s.parse(0), None);
        assert_eq!(s.parse(999), None);
    }

    #[test]
    fn tag_names() {
        let s = scheme();
        assert_eq!(s.tag_name(0), "O");
        assert_eq!(s.tag_name(s.tag(Position::B, 0)), "B-PER");
        assert_eq!(s.tag_name(s.tag(Position::S, 3)), "S-MISC");
    }

    #[test]
    fn encode_span_shapes() {
        let s = scheme();
        assert_eq!(s.encode_span(1, 0), vec![s.tag(Position::S, 0)]);
        assert_eq!(
            s.encode_span(3, 1),
            vec![
                s.tag(Position::B, 1),
                s.tag(Position::I, 1),
                s.tag(Position::E, 1)
            ]
        );
        assert!(s.encode_span(0, 0).is_empty());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = scheme();
        // O B-PER I-PER E-PER O S-LOC
        let mut tags = vec![0u16];
        tags.extend(s.encode_span(3, 0));
        tags.push(0);
        tags.extend(s.encode_span(1, 2));
        let spans = s.decode_spans(&tags);
        assert_eq!(spans, vec![(1, 3, 0), (5, 5, 2)]);
    }

    #[test]
    fn decode_tolerates_dangling_inside() {
        let s = scheme();
        // I-PER I-PER O — lenient: treated as a PER span.
        let i = s.tag(Position::I, 0);
        let spans = s.decode_spans(&[i, i, 0]);
        assert_eq!(spans, vec![(0, 1, 0)]);
    }

    #[test]
    fn decode_type_switch_closes_span() {
        let s = scheme();
        let b_per = s.tag(Position::B, 0);
        let i_org = s.tag(Position::I, 1);
        let spans = s.decode_spans(&[b_per, i_org]);
        assert_eq!(spans, vec![(0, 0, 0), (1, 1, 1)]);
    }

    #[test]
    fn decode_unclosed_span_at_end() {
        let s = scheme();
        let b = s.tag(Position::B, 1);
        let i = s.tag(Position::I, 1);
        assert_eq!(s.decode_spans(&[0, b, i]), vec![(1, 2, 1)]);
    }

    #[test]
    fn decode_empty() {
        assert!(scheme().decode_spans(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_type_panics() {
        let _ = scheme().tag(Position::B, 99);
    }

    #[test]
    fn bio_to_bioes_basic() {
        let s = scheme();
        // O B-PER I-PER O B-LOC
        let out = s.bio_to_bioes(&["O", "B-PER", "I-PER", "O", "B-LOC"]);
        assert_eq!(
            out,
            vec![
                0,
                s.tag(Position::B, 0),
                s.tag(Position::E, 0),
                0,
                s.tag(Position::S, 2),
            ]
        );
    }

    #[test]
    fn bio_to_bioes_three_token_span() {
        let s = scheme();
        let out = s.bio_to_bioes(&["B-ORG", "I-ORG", "I-ORG"]);
        assert_eq!(
            out,
            vec![
                s.tag(Position::B, 1),
                s.tag(Position::I, 1),
                s.tag(Position::E, 1)
            ]
        );
    }

    #[test]
    fn bio_to_bioes_adjacent_spans() {
        let s = scheme();
        // B-PER B-PER → two singletons.
        let out = s.bio_to_bioes(&["B-PER", "B-PER"]);
        assert_eq!(out, vec![s.tag(Position::S, 0), s.tag(Position::S, 0)]);
    }

    #[test]
    fn bio_to_bioes_lenient_on_dangling_i_and_unknown_types() {
        let s = scheme();
        // I-PER without an opener → treated as a span start.
        let out = s.bio_to_bioes(&["I-PER", "I-PER"]);
        assert_eq!(out, vec![s.tag(Position::B, 0), s.tag(Position::E, 0)]);
        // Unknown type and garbage map to O.
        assert_eq!(s.bio_to_bioes(&["B-XYZ", "garbage", "O"]), vec![0, 0, 0]);
    }

    #[test]
    fn bio_bioes_roundtrip_preserves_spans() {
        let s = scheme();
        let bio = [
            "O", "B-PER", "I-PER", "O", "B-LOC", "I-LOC", "I-LOC", "B-MISC",
        ];
        let bioes = s.bio_to_bioes(&bio);
        let back = s.bioes_to_bio(&bioes);
        assert_eq!(back, bio.to_vec());
    }
}

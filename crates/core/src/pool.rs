//! The first-class labeled/unlabeled pool partition.
//!
//! [`Pool`] owns the id space of a run: every pool sample has a stable
//! [`SampleId`] (its index in the sample vector handed to the session
//! builder), and the pool maintains the labeled/unlabeled partition
//! *incrementally* as batches are annotated — replacing the per-round
//! `(0..n).filter(|i| !is_labeled[i])` rebuild and the `Vec<bool>` mask
//! that used to be scattered through the driver loop.
//!
//! ## Ordering contract
//!
//! Both sides of the partition have a documented, test-pinned order,
//! because downstream stages depend on it:
//!
//! * [`Pool::unlabeled`] is **ascending by id**. The driver iterates it
//!   to draw per-sample RNG values, to subsample the density reference
//!   set, and to break top-k ties toward the lower position — all three
//!   observe the iteration order, so it must equal the order the old
//!   mask-filter rebuild produced. Labeling a batch therefore compacts
//!   the sorted vector in place (one `O(|U|)` sweep, no allocation)
//!   instead of swap-removing, which would scramble it.
//! * [`Pool::labeled`] is **labeling order**: the initial random set in
//!   draw order, then each selected batch in selection order. Model
//!   fitting consumes the labeled set in this order, and training is
//!   order-sensitive (SGD shuffles from it deterministically).
//!
//! The partition invariants (disjoint, exhaustive, order as documented)
//! are property-tested against a naive mask-filter oracle in
//! `tests/pool_props.rs`.

/// Stable identifier of a pool sample: its index in the sample vector
/// the session was built with. Ids never move or get reused; only the
/// labeled/unlabeled side a given id is on changes.
pub type SampleId = usize;

/// Incrementally maintained labeled/unlabeled partition over a fixed id
/// space `0..len`.
///
/// ```
/// use histal_core::pool::Pool;
/// let mut pool = Pool::new(5);
/// pool.label_batch(&[3, 1]);
/// assert_eq!(pool.labeled(), &[3, 1]);        // labeling order
/// assert_eq!(pool.unlabeled(), &[0, 2, 4]);   // ascending by id
/// assert!(pool.is_labeled(3));
/// ```
#[derive(Debug, Clone)]
pub struct Pool {
    /// `mask[id]` ⇔ `id` is labeled.
    mask: Vec<bool>,
    /// Unlabeled ids, ascending.
    unlabeled: Vec<SampleId>,
    /// Labeled ids, in labeling order.
    labeled: Vec<SampleId>,
}

impl Pool {
    /// A pool of `n` samples, all unlabeled.
    pub fn new(n: usize) -> Self {
        Self {
            mask: vec![false; n],
            unlabeled: (0..n).collect(),
            labeled: Vec::new(),
        }
    }

    /// Total number of samples (both sides).
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// True for a pool of zero samples.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Number of labeled samples.
    pub fn n_labeled(&self) -> usize {
        self.labeled.len()
    }

    /// Number of unlabeled samples.
    pub fn n_unlabeled(&self) -> usize {
        self.unlabeled.len()
    }

    /// Whether `id` is on the labeled side.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn is_labeled(&self, id: SampleId) -> bool {
        self.mask[id]
    }

    /// The unlabeled ids, ascending. See the module docs for why the
    /// order is load-bearing.
    pub fn unlabeled(&self) -> &[SampleId] {
        &self.unlabeled
    }

    /// The labeled ids, in labeling order (initial set first, then each
    /// annotated batch in selection order).
    pub fn labeled(&self) -> &[SampleId] {
        &self.labeled
    }

    /// Move `ids` to the labeled side, appending them to
    /// [`Pool::labeled`] in the given order. The unlabeled side is
    /// compacted with a single in-place sweep, preserving ascending
    /// order without rebuilding or reallocating.
    ///
    /// # Panics
    /// Panics if any id is out of range or already labeled (a sample
    /// cannot be annotated twice).
    pub fn label_batch(&mut self, ids: &[SampleId]) {
        for &id in ids {
            assert!(!self.mask[id], "sample {id} labeled twice");
            self.mask[id] = true;
            self.labeled.push(id);
        }
        let mask = &self.mask;
        self.unlabeled.retain(|&id| !mask[id]);
    }

    /// Move one id to the labeled side.
    pub fn label(&mut self, id: SampleId) {
        self.label_batch(std::slice::from_ref(&id));
    }

    /// Move `id` back to the unlabeled side (label revocation — not used
    /// by the driver loop, but part of the partition contract so
    /// streaming pools can recycle ids). The id is re-inserted at its
    /// sorted position on the unlabeled side and removed from the
    /// labeled sequence.
    ///
    /// # Panics
    /// Panics if `id` is out of range or not currently labeled.
    pub fn unlabel(&mut self, id: SampleId) {
        assert!(self.mask[id], "sample {id} is not labeled");
        self.mask[id] = false;
        let pos = self
            .labeled
            .iter()
            .position(|&l| l == id)
            .expect("mask and labeled vec agree");
        self.labeled.remove(pos);
        let at = self.unlabeled.partition_point(|&u| u < id);
        self.unlabeled.insert(at, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_unlabeled() {
        let pool = Pool::new(4);
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.n_labeled(), 0);
        assert_eq!(pool.unlabeled(), &[0, 1, 2, 3]);
        assert!(!pool.is_labeled(2));
    }

    #[test]
    fn label_batch_keeps_both_orders() {
        let mut pool = Pool::new(6);
        pool.label_batch(&[4, 0]);
        pool.label_batch(&[2]);
        assert_eq!(pool.labeled(), &[4, 0, 2]);
        assert_eq!(pool.unlabeled(), &[1, 3, 5]);
        assert_eq!(pool.n_unlabeled(), 3);
    }

    #[test]
    fn unlabel_restores_sorted_position() {
        let mut pool = Pool::new(5);
        pool.label_batch(&[3, 1, 4]);
        pool.unlabel(1);
        assert_eq!(pool.unlabeled(), &[0, 1, 2]);
        assert_eq!(pool.labeled(), &[3, 4]);
        assert!(!pool.is_labeled(1));
    }

    #[test]
    fn empty_pool() {
        let mut pool = Pool::new(0);
        assert!(pool.is_empty());
        pool.label_batch(&[]);
        assert!(pool.unlabeled().is_empty());
    }

    #[test]
    #[should_panic(expected = "labeled twice")]
    fn double_label_panics() {
        let mut pool = Pool::new(3);
        pool.label(1);
        pool.label(1);
    }

    #[test]
    #[should_panic(expected = "not labeled")]
    fn unlabel_unlabeled_panics() {
        let mut pool = Pool::new(3);
        pool.unlabel(0);
    }
}

//! Stopping criteria for active-learning loops.
//!
//! The paper runs a fixed number of rounds, but a production annotation
//! pipeline stops when labels stop paying for themselves. These criteria
//! compose (first to fire wins) and are consulted by
//! [`crate::driver::ActiveLearner::run_until`].

use serde::{Deserialize, Serialize};

use crate::driver::CurvePoint;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The configured number of rounds completed.
    RoundsExhausted,
    /// The unlabeled pool is empty.
    PoolExhausted,
    /// The label budget was reached.
    BudgetReached,
    /// The target metric was reached.
    TargetReached,
    /// No improvement ≥ `min_delta` for `patience` consecutive rounds.
    Plateau,
    /// An external scheduler stopped the run early (e.g. the adaptive
    /// grid executor pruning a dominated cell).
    Pruned,
}

/// Composable stopping rule evaluated after each round's metric.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StoppingRule {
    /// Stop once this many samples are labeled.
    pub max_labeled: Option<usize>,
    /// Stop once the test metric reaches this value.
    pub target_metric: Option<f64>,
    /// Stop after `patience` rounds without ≥ `min_delta` improvement
    /// over the best metric so far.
    pub patience: Option<usize>,
    /// Minimum improvement that resets the patience counter.
    pub min_delta: f64,
}

impl StoppingRule {
    /// A rule that never stops early.
    pub fn none() -> Self {
        Self::default()
    }

    /// Stop at a label budget.
    pub fn with_budget(mut self, max_labeled: usize) -> Self {
        self.max_labeled = Some(max_labeled);
        self
    }

    /// Stop at a target metric.
    pub fn with_target(mut self, target: f64) -> Self {
        self.target_metric = Some(target);
        self
    }

    /// Stop after a plateau.
    pub fn with_patience(mut self, patience: usize, min_delta: f64) -> Self {
        self.patience = Some(patience);
        self.min_delta = min_delta;
        self
    }

    /// Evaluate against the curve so far; `None` means keep going.
    pub fn should_stop(&self, curve: &[CurvePoint]) -> Option<StopReason> {
        let last = curve.last()?;
        if let Some(budget) = self.max_labeled {
            if last.n_labeled >= budget {
                return Some(StopReason::BudgetReached);
            }
        }
        if let Some(target) = self.target_metric {
            if last.metric >= target {
                return Some(StopReason::TargetReached);
            }
        }
        if let Some(patience) = self.patience {
            if curve.len() > patience {
                // Best metric at least `patience` rounds ago.
                let cutoff = curve.len() - patience;
                let best_before = curve[..cutoff]
                    .iter()
                    .map(|p| p.metric)
                    .fold(f64::NEG_INFINITY, f64::max);
                let best_since = curve[cutoff..]
                    .iter()
                    .map(|p| p.metric)
                    .fold(f64::NEG_INFINITY, f64::max);
                if best_since < best_before + self.min_delta {
                    return Some(StopReason::Plateau);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(usize, f64)]) -> Vec<CurvePoint> {
        points
            .iter()
            .map(|&(n, m)| CurvePoint {
                n_labeled: n,
                metric: m,
            })
            .collect()
    }

    #[test]
    fn none_never_stops() {
        let rule = StoppingRule::none();
        assert_eq!(rule.should_stop(&curve(&[(10, 0.5), (20, 0.4)])), None);
        assert_eq!(rule.should_stop(&[]), None);
    }

    #[test]
    fn budget_fires_at_threshold() {
        let rule = StoppingRule::none().with_budget(50);
        assert_eq!(rule.should_stop(&curve(&[(40, 0.5)])), None);
        assert_eq!(
            rule.should_stop(&curve(&[(40, 0.5), (55, 0.6)])),
            Some(StopReason::BudgetReached)
        );
    }

    #[test]
    fn target_fires_when_reached() {
        let rule = StoppingRule::none().with_target(0.7);
        assert_eq!(rule.should_stop(&curve(&[(10, 0.69)])), None);
        assert_eq!(
            rule.should_stop(&curve(&[(10, 0.69), (20, 0.71)])),
            Some(StopReason::TargetReached)
        );
    }

    #[test]
    fn plateau_needs_patience_rounds() {
        let rule = StoppingRule::none().with_patience(2, 1e-3);
        // Still improving: no stop.
        let improving = curve(&[(10, 0.5), (20, 0.55), (30, 0.6)]);
        assert_eq!(rule.should_stop(&improving), None);
        // Flat for two rounds after the best.
        let flat = curve(&[(10, 0.5), (20, 0.6), (30, 0.6), (40, 0.6)]);
        assert_eq!(rule.should_stop(&flat), Some(StopReason::Plateau));
    }

    #[test]
    fn plateau_respects_min_delta() {
        let rule = StoppingRule::none().with_patience(2, 0.05);
        // Improvements below min_delta count as plateau.
        let creeping = curve(&[(10, 0.5), (20, 0.51), (30, 0.52), (40, 0.53)]);
        assert_eq!(rule.should_stop(&creeping), Some(StopReason::Plateau));
    }

    #[test]
    fn budget_beats_target_in_priority() {
        let rule = StoppingRule::none().with_budget(10).with_target(0.5);
        assert_eq!(
            rule.should_stop(&curve(&[(10, 0.9)])),
            Some(StopReason::BudgetReached)
        );
    }
}

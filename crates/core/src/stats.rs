//! Statistical comparison of active-learning runs.
//!
//! The paper reports that its methods "significantly promote existing
//! methods"; this module provides the machinery to back such claims:
//! a Wilcoxon signed-rank test over paired per-point curve differences
//! and a paired bootstrap test over per-repeat summary statistics.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::driver::RunResult;

/// Result of a two-sided paired significance test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic (W for Wilcoxon, mean difference for bootstrap).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the paired differences (`a − b`): positive means `a` wins.
    pub mean_diff: f64,
}

impl TestResult {
    /// Significant at level `alpha` *and* in favour of the first input.
    pub fn significantly_better(&self, alpha: f64) -> bool {
        self.p_value < alpha && self.mean_diff > 0.0
    }
}

/// Wilcoxon signed-rank test on paired samples (normal approximation
/// with tie correction — adequate for n ≥ 10, which curve comparisons
/// easily reach). Zero differences are dropped per the standard
/// procedure.
///
/// ```
/// use histal_core::stats::wilcoxon_signed_rank;
/// let variant: Vec<f64> = (0..15).map(|i| 0.6 + 0.01 * i as f64).collect();
/// let base: Vec<f64> = variant.iter().map(|x| x - 0.02).collect();
/// let t = wilcoxon_signed_rank(&variant, &base);
/// assert!(t.significantly_better(0.05));
/// ```
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> TestResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| d.abs() > 1e-15)
        .collect();
    let mean_diff = if a.is_empty() {
        0.0
    } else {
        a.iter().zip(b).map(|(x, y)| x - y).sum::<f64>() / a.len() as f64
    };
    let n = diffs.len();
    if n == 0 {
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
            mean_diff,
        };
    }
    // Rank |d| ascending with mid-ranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[order[j + 1]].abs() - diffs[order[i]].abs()).abs() < 1e-15 {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = mid;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(&d, _)| d > 0.0)
        .map(|(_, &r)| r)
        .sum();
    let nf = n as f64;
    let mean_w = nf * (nf + 1.0) / 4.0;
    let var_w = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0;
    if var_w <= 0.0 {
        return TestResult {
            statistic: w_plus,
            p_value: 1.0,
            mean_diff,
        };
    }
    // Continuity-corrected z.
    let z = (w_plus - mean_w - 0.5 * (w_plus - mean_w).signum()) / var_w.sqrt();
    let p = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    TestResult {
        statistic: w_plus,
        p_value: p.clamp(0.0, 1.0),
        mean_diff,
    }
}

/// Paired bootstrap test: resample the paired differences `iters` times
/// and report the two-sided p-value of the sign of the mean.
pub fn paired_bootstrap(a: &[f64], b: &[f64], iters: usize, seed: u64) -> TestResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    let mean_diff = if n == 0 {
        0.0
    } else {
        diffs.iter().sum::<f64>() / n as f64
    };
    if n == 0 || diffs.iter().all(|d| d.abs() < 1e-15) {
        return TestResult {
            statistic: mean_diff,
            p_value: 1.0,
            mean_diff,
        };
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut opposite = 0usize;
    for _ in 0..iters {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += diffs[rng.gen_range(0..n)];
        }
        let resampled = acc / n as f64;
        if (resampled >= 0.0) != (mean_diff >= 0.0) || resampled == 0.0 {
            opposite += 1;
        }
    }
    // Two-sided p with the +1 smoothing that keeps p > 0.
    let p = 2.0 * (opposite as f64 + 1.0) / (iters as f64 + 1.0);
    TestResult {
        statistic: mean_diff,
        p_value: p.min(1.0),
        mean_diff,
    }
}

/// Wilcoxon over the aligned learning curves of two strategies.
///
/// # Panics
/// Panics if the curves have different lengths.
pub fn compare_curves(a: &RunResult, b: &RunResult) -> TestResult {
    assert_eq!(a.curve.len(), b.curve.len(), "curves must align");
    let xs: Vec<f64> = a.curve.iter().map(|p| p.metric).collect();
    let ys: Vec<f64> = b.curve.iter().map(|p| p.metric).collect();
    wilcoxon_signed_rank(&xs, &ys)
}

/// Φ(z) via the Abramowitz–Stegun 7.1.26 erf approximation (|ε| < 1.5e-7).
fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-5);
    }

    #[test]
    fn cdf_symmetry() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn wilcoxon_detects_consistent_improvement() {
        let a: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64 + 0.02).collect();
        let b: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64).collect();
        let t = wilcoxon_signed_rank(&a, &b);
        assert!(t.p_value < 0.01, "p = {}", t.p_value);
        assert!(t.significantly_better(0.05));
    }

    #[test]
    fn wilcoxon_no_difference() {
        let a = vec![0.5; 15];
        let t = wilcoxon_signed_rank(&a, &a);
        assert_eq!(t.p_value, 1.0);
        assert!(!t.significantly_better(0.05));
    }

    #[test]
    fn wilcoxon_mixed_differences_not_significant() {
        let a: Vec<f64> = (0..20)
            .map(|i| 0.5 + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let b = vec![0.5; 20];
        let t = wilcoxon_signed_rank(&a, &b);
        assert!(t.p_value > 0.5, "p = {}", t.p_value);
    }

    #[test]
    fn wilcoxon_direction_matters() {
        let a = vec![0.4; 12];
        let b: Vec<f64> = (0..12).map(|i| 0.5 + 0.001 * i as f64).collect();
        let t = wilcoxon_signed_rank(&a, &b);
        assert!(t.mean_diff < 0.0);
        assert!(!t.significantly_better(0.05));
    }

    #[test]
    fn bootstrap_consistent_improvement() {
        let a: Vec<f64> = (0..25).map(|i| 0.6 + 0.001 * (i % 5) as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.03).collect();
        let t = paired_bootstrap(&a, &b, 2000, 7);
        assert!(t.significantly_better(0.05), "p = {}", t.p_value);
    }

    #[test]
    fn bootstrap_identical_is_insignificant() {
        let a = vec![0.5; 10];
        let t = paired_bootstrap(&a, &a, 500, 7);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn bootstrap_deterministic_under_seed() {
        let a: Vec<f64> = (0..15).map(|i| 0.5 + 0.01 * (i as f64).sin()).collect();
        let b = vec![0.5; 15];
        let t1 = paired_bootstrap(&a, &b, 1000, 3);
        let t2 = paired_bootstrap(&a, &b, 1000, 3);
        assert_eq!(t1.p_value, t2.p_value);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_pairs_panic() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }
}

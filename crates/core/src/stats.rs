//! Statistical comparison of active-learning runs.
//!
//! The paper reports that its methods "significantly promote existing
//! methods"; this module provides the machinery to back such claims:
//! a Wilcoxon signed-rank test over paired per-point curve differences
//! and a paired bootstrap test over per-repeat summary statistics.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::driver::RunResult;

/// Result of a two-sided paired significance test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic (W for Wilcoxon, mean difference for bootstrap).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the paired differences (`a − b`): positive means `a` wins.
    pub mean_diff: f64,
}

impl TestResult {
    /// Significant at level `alpha` *and* in favour of the first input.
    pub fn significantly_better(&self, alpha: f64) -> bool {
        self.p_value < alpha && self.mean_diff > 0.0
    }
}

/// Wilcoxon signed-rank test on paired samples (normal approximation
/// with tie correction — adequate for n ≥ 10, which curve comparisons
/// easily reach). Zero differences are dropped per the standard
/// procedure.
///
/// ```
/// use histal_core::stats::wilcoxon_signed_rank;
/// let variant: Vec<f64> = (0..15).map(|i| 0.6 + 0.01 * i as f64).collect();
/// let base: Vec<f64> = variant.iter().map(|x| x - 0.02).collect();
/// let t = wilcoxon_signed_rank(&variant, &base);
/// assert!(t.significantly_better(0.05));
/// ```
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> TestResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| d.abs() > 1e-15)
        .collect();
    let mean_diff = if a.is_empty() {
        0.0
    } else {
        a.iter().zip(b).map(|(x, y)| x - y).sum::<f64>() / a.len() as f64
    };
    let n = diffs.len();
    if n == 0 {
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
            mean_diff,
        };
    }
    // Rank |d| ascending with mid-ranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (diffs[order[j + 1]].abs() - diffs[order[i]].abs()).abs() < 1e-15 {
            j += 1;
        }
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = mid;
        }
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(&d, _)| d > 0.0)
        .map(|(_, &r)| r)
        .sum();
    let nf = n as f64;
    let mean_w = nf * (nf + 1.0) / 4.0;
    let var_w = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0;
    if var_w <= 0.0 {
        return TestResult {
            statistic: w_plus,
            p_value: 1.0,
            mean_diff,
        };
    }
    // Continuity-corrected z.
    let z = (w_plus - mean_w - 0.5 * (w_plus - mean_w).signum()) / var_w.sqrt();
    let p = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    TestResult {
        statistic: w_plus,
        p_value: p.clamp(0.0, 1.0),
        mean_diff,
    }
}

/// Paired bootstrap test: resample the paired differences `iters` times
/// and report the two-sided p-value of the sign of the mean.
pub fn paired_bootstrap(a: &[f64], b: &[f64], iters: usize, seed: u64) -> TestResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    let mean_diff = if n == 0 {
        0.0
    } else {
        diffs.iter().sum::<f64>() / n as f64
    };
    if n == 0 || diffs.iter().all(|d| d.abs() < 1e-15) {
        return TestResult {
            statistic: mean_diff,
            p_value: 1.0,
            mean_diff,
        };
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut opposite = 0usize;
    for _ in 0..iters {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += diffs[rng.gen_range(0..n)];
        }
        let resampled = acc / n as f64;
        if (resampled >= 0.0) != (mean_diff >= 0.0) || resampled == 0.0 {
            opposite += 1;
        }
    }
    // Two-sided p with the +1 smoothing that keeps p > 0.
    let p = 2.0 * (opposite as f64 + 1.0) / (iters as f64 + 1.0);
    TestResult {
        statistic: mean_diff,
        p_value: p.min(1.0),
        mean_diff,
    }
}

/// Outcome of a paired comparison at a significance level: did the
/// first input win, lose, or tie against the second?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Significant and in favour of the first input.
    Win,
    /// Significant and against the first input.
    Loss,
    /// Not significant at the requested level.
    Tie,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Win => "win",
            Verdict::Loss => "loss",
            Verdict::Tie => "tie",
        })
    }
}

/// A paired comparison with an interval estimate: mean difference
/// (`a − b`), a two-sided confidence interval for it, the p-value of the
/// chosen resampling test, and the raw per-pair win/loss/tie census.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedComparison {
    /// Mean of the paired differences (`a − b`).
    pub mean_diff: f64,
    /// Lower end of the two-sided `1 − alpha` confidence interval.
    pub ci_low: f64,
    /// Upper end of the two-sided `1 − alpha` confidence interval.
    pub ci_high: f64,
    /// Two-sided p-value of the resampling test.
    pub p_value: f64,
    /// Number of pairs where `a > b` (beyond the 1e-15 tie tolerance).
    pub wins: usize,
    /// Number of pairs where `a < b`.
    pub losses: usize,
    /// Number of pairs within the tie tolerance.
    pub ties: usize,
}

impl PairedComparison {
    /// Classify the comparison at level `alpha`: [`Verdict::Win`] if
    /// significant and `mean_diff > 0`, [`Verdict::Loss`] if significant
    /// and `mean_diff < 0`, [`Verdict::Tie`] otherwise.
    pub fn verdict(&self, alpha: f64) -> Verdict {
        if self.p_value < alpha && self.mean_diff > 0.0 {
            Verdict::Win
        } else if self.p_value < alpha && self.mean_diff < 0.0 {
            Verdict::Loss
        } else {
            Verdict::Tie
        }
    }
}

/// Census of the raw paired differences at the 1e-15 tie tolerance.
fn win_loss_tie(diffs: &[f64]) -> (usize, usize, usize) {
    let mut wins = 0;
    let mut losses = 0;
    let mut ties = 0;
    for &d in diffs {
        if d > 1e-15 {
            wins += 1;
        } else if d < -1e-15 {
            losses += 1;
        } else {
            ties += 1;
        }
    }
    (wins, losses, ties)
}

/// Linear-interpolation quantile of an ascending-sorted slice:
/// `idx = q·(len − 1)`, interpolated between `floor(idx)` and
/// `ceil(idx)`. The slice must be non-empty.
fn sorted_quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Degenerate comparison for empty or all-tied inputs: point interval at
/// the mean difference, p = 1.
fn degenerate_comparison(diffs: &[f64], mean_diff: f64) -> PairedComparison {
    let (wins, losses, ties) = win_loss_tie(diffs);
    PairedComparison {
        mean_diff,
        ci_low: mean_diff,
        ci_high: mean_diff,
        p_value: 1.0,
        wins,
        losses,
        ties,
    }
}

/// Paired bootstrap with a percentile confidence interval: resample the
/// paired differences with replacement `iters` times (drawing `n`
/// indices per iteration with `gen_range(0..n)` from a
/// `ChaCha8Rng::seed_from_u64(seed)` stream, exactly like
/// [`paired_bootstrap`]), take the mean of each resample, and report
///
/// * the two-sided `1 − alpha` percentile interval
///   (linear-interpolation quantiles `alpha/2` and `1 − alpha/2` of the
///   sorted resampled means), and
/// * the same sign-based two-sided p-value as [`paired_bootstrap`]
///   (`2·(opposite + 1)/(iters + 1)`, capped at 1).
///
/// With `n = 0` pairs, all-tied pairs, or `iters = 0`, returns the
/// degenerate point interval at `mean_diff` with p = 1.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn paired_bootstrap_ci(
    a: &[f64],
    b: &[f64],
    iters: usize,
    seed: u64,
    alpha: f64,
) -> PairedComparison {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    let mean_diff = if n == 0 {
        0.0
    } else {
        diffs.iter().sum::<f64>() / n as f64
    };
    if n == 0 || iters == 0 || diffs.iter().all(|d| d.abs() < 1e-15) {
        return degenerate_comparison(&diffs, mean_diff);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(iters);
    let mut opposite = 0usize;
    for _ in 0..iters {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += diffs[rng.gen_range(0..n)];
        }
        let resampled = acc / n as f64;
        if (resampled >= 0.0) != (mean_diff >= 0.0) || resampled == 0.0 {
            opposite += 1;
        }
        means.push(resampled);
    }
    means.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let p = 2.0 * (opposite as f64 + 1.0) / (iters as f64 + 1.0);
    let (wins, losses, ties) = win_loss_tie(&diffs);
    PairedComparison {
        mean_diff,
        ci_low: sorted_quantile(&means, alpha / 2.0),
        ci_high: sorted_quantile(&means, 1.0 - alpha / 2.0),
        p_value: p.min(1.0),
        wins,
        losses,
        ties,
    }
}

/// Paired sign-flip permutation test with a test-inversion confidence
/// interval. Under the null of no paired difference the sign of each
/// difference is exchangeable, so each iteration flips the sign of every
/// difference independently (one `gen::<bool>()` draw per difference,
/// `n·iters` draws total from a `ChaCha8Rng::seed_from_u64(seed)`
/// stream) and records the permuted mean. Reports
///
/// * `p = (#{|permuted mean| ≥ |mean_diff|} + 1)/(iters + 1)`, capped
///   at 1, and
/// * the basic (pivotal) `1 − alpha` interval
///   `[mean_diff − q(1 − alpha/2), mean_diff − q(alpha/2)]`, where `q`
///   are linear-interpolation quantiles of the sorted permuted means
///   (a null distribution centred at zero).
///
/// With `n = 0` pairs, all-tied pairs, or `iters = 0`, returns the
/// degenerate point interval at `mean_diff` with p = 1.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn paired_permutation(
    a: &[f64],
    b: &[f64],
    iters: usize,
    seed: u64,
    alpha: f64,
) -> PairedComparison {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len();
    let mean_diff = if n == 0 {
        0.0
    } else {
        diffs.iter().sum::<f64>() / n as f64
    };
    if n == 0 || iters == 0 || diffs.iter().all(|d| d.abs() < 1e-15) {
        return degenerate_comparison(&diffs, mean_diff);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(iters);
    let mut extreme = 0usize;
    for _ in 0..iters {
        let mut acc = 0.0;
        for &d in &diffs {
            acc += if rng.gen::<bool>() { -d } else { d };
        }
        let permuted = acc / n as f64;
        if permuted.abs() >= mean_diff.abs() {
            extreme += 1;
        }
        means.push(permuted);
    }
    means.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let p = (extreme as f64 + 1.0) / (iters as f64 + 1.0);
    let (wins, losses, ties) = win_loss_tie(&diffs);
    PairedComparison {
        mean_diff,
        ci_low: mean_diff - sorted_quantile(&means, 1.0 - alpha / 2.0),
        ci_high: mean_diff - sorted_quantile(&means, alpha / 2.0),
        p_value: p.min(1.0),
        wins,
        losses,
        ties,
    }
}

/// Wilcoxon over the aligned learning curves of two strategies.
///
/// # Panics
/// Panics if the curves have different lengths.
pub fn compare_curves(a: &RunResult, b: &RunResult) -> TestResult {
    assert_eq!(a.curve.len(), b.curve.len(), "curves must align");
    let xs: Vec<f64> = a.curve.iter().map(|p| p.metric).collect();
    let ys: Vec<f64> = b.curve.iter().map(|p| p.metric).collect();
    wilcoxon_signed_rank(&xs, &ys)
}

/// Φ(z) via the Abramowitz–Stegun 7.1.26 erf approximation (|ε| < 1.5e-7).
fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-5);
    }

    #[test]
    fn cdf_symmetry() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn wilcoxon_detects_consistent_improvement() {
        let a: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64 + 0.02).collect();
        let b: Vec<f64> = (0..20).map(|i| 0.5 + 0.01 * i as f64).collect();
        let t = wilcoxon_signed_rank(&a, &b);
        assert!(t.p_value < 0.01, "p = {}", t.p_value);
        assert!(t.significantly_better(0.05));
    }

    #[test]
    fn wilcoxon_no_difference() {
        let a = vec![0.5; 15];
        let t = wilcoxon_signed_rank(&a, &a);
        assert_eq!(t.p_value, 1.0);
        assert!(!t.significantly_better(0.05));
    }

    #[test]
    fn wilcoxon_mixed_differences_not_significant() {
        let a: Vec<f64> = (0..20)
            .map(|i| 0.5 + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let b = vec![0.5; 20];
        let t = wilcoxon_signed_rank(&a, &b);
        assert!(t.p_value > 0.5, "p = {}", t.p_value);
    }

    #[test]
    fn wilcoxon_direction_matters() {
        let a = vec![0.4; 12];
        let b: Vec<f64> = (0..12).map(|i| 0.5 + 0.001 * i as f64).collect();
        let t = wilcoxon_signed_rank(&a, &b);
        assert!(t.mean_diff < 0.0);
        assert!(!t.significantly_better(0.05));
    }

    #[test]
    fn bootstrap_consistent_improvement() {
        let a: Vec<f64> = (0..25).map(|i| 0.6 + 0.001 * (i % 5) as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.03).collect();
        let t = paired_bootstrap(&a, &b, 2000, 7);
        assert!(t.significantly_better(0.05), "p = {}", t.p_value);
    }

    #[test]
    fn bootstrap_identical_is_insignificant() {
        let a = vec![0.5; 10];
        let t = paired_bootstrap(&a, &a, 500, 7);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn bootstrap_deterministic_under_seed() {
        let a: Vec<f64> = (0..15).map(|i| 0.5 + 0.01 * (i as f64).sin()).collect();
        let b = vec![0.5; 15];
        let t1 = paired_bootstrap(&a, &b, 1000, 3);
        let t2 = paired_bootstrap(&a, &b, 1000, 3);
        assert_eq!(t1.p_value, t2.p_value);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_pairs_panic() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn bootstrap_ci_brackets_a_clear_improvement() {
        let a: Vec<f64> = (0..30).map(|i| 0.62 + 0.002 * (i % 7) as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.05).collect();
        let c = paired_bootstrap_ci(&a, &b, 2000, 11, 0.05);
        assert!(c.ci_low <= c.mean_diff && c.mean_diff <= c.ci_high);
        assert!(c.ci_low > 0.0, "ci = [{}, {}]", c.ci_low, c.ci_high);
        assert_eq!(c.verdict(0.05), Verdict::Win);
        assert_eq!((c.wins, c.losses, c.ties), (30, 0, 0));
    }

    #[test]
    fn bootstrap_ci_p_matches_paired_bootstrap() {
        let a: Vec<f64> = (0..20).map(|i| 0.5 + 0.03 * (i as f64).sin()).collect();
        let b = vec![0.5; 20];
        let t = paired_bootstrap(&a, &b, 1500, 9);
        let c = paired_bootstrap_ci(&a, &b, 1500, 9, 0.05);
        assert_eq!(t.p_value, c.p_value);
        assert_eq!(t.mean_diff, c.mean_diff);
    }

    #[test]
    fn bootstrap_ci_identical_is_degenerate() {
        let a = vec![0.5; 12];
        let c = paired_bootstrap_ci(&a, &a, 500, 3, 0.05);
        assert_eq!(c.p_value, 1.0);
        assert_eq!((c.ci_low, c.ci_high), (0.0, 0.0));
        assert_eq!(c.verdict(0.05), Verdict::Tie);
        assert_eq!(c.ties, 12);
    }

    #[test]
    fn permutation_detects_consistent_improvement() {
        let a: Vec<f64> = (0..25).map(|i| 0.6 + 0.001 * (i % 5) as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.03).collect();
        let c = paired_permutation(&a, &b, 2000, 7, 0.05);
        assert!(c.p_value < 0.05, "p = {}", c.p_value);
        assert_eq!(c.verdict(0.05), Verdict::Win);
        assert!(c.ci_low <= c.mean_diff && c.mean_diff <= c.ci_high);
    }

    #[test]
    fn permutation_loss_direction() {
        let a = vec![0.4; 25];
        let b: Vec<f64> = (0..25).map(|i| 0.5 + 0.001 * (i % 3) as f64).collect();
        let c = paired_permutation(&a, &b, 2000, 7, 0.05);
        assert!(c.mean_diff < 0.0);
        assert_eq!(c.verdict(0.05), Verdict::Loss);
    }

    #[test]
    fn permutation_symmetric_noise_is_a_tie() {
        let a: Vec<f64> = (0..20)
            .map(|i| 0.5 + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let b = vec![0.5; 20];
        let c = paired_permutation(&a, &b, 2000, 5, 0.05);
        assert!(c.p_value > 0.5, "p = {}", c.p_value);
        assert_eq!(c.verdict(0.05), Verdict::Tie);
    }

    #[test]
    fn permutation_deterministic_under_seed() {
        let a: Vec<f64> = (0..15).map(|i| 0.5 + 0.01 * (i as f64).sin()).collect();
        let b = vec![0.5; 15];
        let c1 = paired_permutation(&a, &b, 800, 3, 0.05);
        let c2 = paired_permutation(&a, &b, 800, 3, 0.05);
        assert_eq!(c1, c2);
    }

    #[test]
    fn sorted_quantile_endpoints_and_midpoint() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(sorted_quantile(&xs, 0.0), 1.0);
        assert_eq!(sorted_quantile(&xs, 1.0), 5.0);
        assert_eq!(sorted_quantile(&xs, 0.5), 3.0);
        assert_eq!(sorted_quantile(&xs, 0.125), 1.5);
    }

    #[test]
    fn verdict_renders_lowercase() {
        assert_eq!(Verdict::Win.to_string(), "win");
        assert_eq!(Verdict::Loss.to_string(), "loss");
        assert_eq!(Verdict::Tie.to_string(), "tie");
    }
}

//! LHS — Learn from Historical Sequences (§4.4, Algorithm 1).
//!
//! LHS casts sample selection as learning-to-rank: each active-learning
//! iteration is a *query*, the candidate samples are its *documents*, and
//! the graded relevance of a candidate is how much adding it actually
//! improved the model (`Eval(M′) − Eval(M)`, bucketed into levels). A
//! LambdaMART ranker is trained on features extracted from the historical
//! evaluation sequence:
//!
//! 1. the raw last-`l` window of historical scores,
//! 2. the fluctuation (window variance),
//! 3. the Mann–Kendall trend statistic,
//! 4. the predicted next score (LSTM, or AR(p) for the ablation),
//! 5. the model's output probability distribution.
//!
//! The trained [`LhsSelector`] then ranks a candidate set (top entropy ∪
//! top LC, §4.4.1) each round and selects the best batch.

use rand::prelude::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use histal_ltr::{
    LambdaMart, LambdaMartConfig, LinearRanker, LinearRankerConfig, QueryGroup, Ranker,
    RankingDataset,
};
use histal_tseries::{
    autocorrelation, last_window, mann_kendall, window_variance, ArPredictor, HoltPredictor,
    LstmConfig, LstmPredictor, SequencePredictor,
};

use crate::driver::{mix_seed, top_k};
use crate::error::Error;
use crate::eval::SampleEval;
use crate::history::HistoryStore;
use crate::model::Model;
use crate::pool::Pool;
use crate::strategy::BaseStrategy;

/// Which feature groups the ranker sees — each toggle corresponds to one
/// row of the paper's ablation study (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LhsFeatureConfig {
    /// History window length `l` for the raw-score features.
    pub window: usize,
    /// Number of probability features (posterior sorted descending,
    /// padded/truncated to this width).
    pub n_prob_features: usize,
    /// Include the raw last-`l` historical scores.
    pub use_history: bool,
    /// Include the window variance (fluctuation).
    pub use_fluctuation: bool,
    /// Include the Mann–Kendall trend statistics.
    pub use_trend: bool,
    /// Include the predicted next score.
    pub use_prediction: bool,
    /// Include the output probability distribution.
    pub use_probs: bool,
    /// Include the lag-1 autocorrelation of the window — an *extension*
    /// feature beyond the paper (its conclusion calls for exploring more
    /// sequence features): separates oscillating from drifting histories
    /// at equal variance.
    pub use_autocorr: bool,
}

impl Default for LhsFeatureConfig {
    fn default() -> Self {
        Self {
            window: 5,
            n_prob_features: 2,
            use_history: true,
            use_fluctuation: true,
            use_trend: true,
            use_prediction: true,
            use_probs: true,
            use_autocorr: false,
        }
    }
}

impl LhsFeatureConfig {
    /// Total feature-vector width under this configuration.
    pub fn width(&self) -> usize {
        let mut w = 0;
        if self.use_history {
            w += self.window;
        }
        if self.use_fluctuation {
            w += 1;
        }
        if self.use_trend {
            w += 2; // z statistic and tau
        }
        if self.use_prediction {
            w += 1;
        }
        if self.use_probs {
            w += self.n_prob_features;
        }
        if self.use_autocorr {
            w += 1;
        }
        w
    }

    /// Extract the ranking features for one sample.
    ///
    /// `seq` is the historical evaluation sequence *including* the current
    /// iteration's score; `eval` is the current model evaluation.
    pub fn extract(
        &self,
        seq: &[f64],
        eval: &SampleEval,
        predictor: &dyn SequencePredictor,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.width());
        if self.use_history {
            let w = last_window(seq, self.window);
            // Left-pad with zeros so early iterations produce fixed-width rows.
            out.extend(std::iter::repeat(0.0).take(self.window - w.len()));
            out.extend_from_slice(w);
        }
        if self.use_fluctuation {
            out.push(window_variance(seq, self.window));
        }
        if self.use_trend {
            let mk = mann_kendall(last_window(seq, self.window));
            out.push(mk.z);
            out.push(mk.tau);
        }
        if self.use_prediction {
            out.push(predictor.predict_next(seq));
        }
        if self.use_probs {
            let mut probs = eval.probs.clone();
            probs.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            probs.resize(self.n_prob_features, 0.0);
            out.extend_from_slice(&probs[..self.n_prob_features]);
        }
        if self.use_autocorr {
            out.push(autocorrelation(last_window(seq, self.window), 1));
        }
        out
    }
}

/// Which next-score predictor to train (§4.4.2 feature 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PredictorKind {
    /// The paper's choice: a small scalar LSTM.
    Lstm(LstmConfig),
    /// Ablation alternative: AR(p) least squares.
    Ar {
        /// Autoregressive order.
        order: usize,
    },
    /// Ablation alternative: Holt double exponential smoothing (gains
    /// grid-fitted on the history corpus).
    Holt,
}

impl Default for PredictorKind {
    fn default() -> Self {
        Self::Lstm(LstmConfig::default())
    }
}

/// Which learning-to-rank model to train.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RankerKind {
    /// The paper's choice (LambdaMART, Wu et al. 2010).
    LambdaMart(LambdaMartConfig),
    /// Ablation alternative: pairwise-logistic linear ranker.
    Linear(LinearRankerConfig),
}

impl Default for RankerKind {
    fn default() -> Self {
        Self::LambdaMart(LambdaMartConfig::default())
    }
}

/// Serializable bundle of everything [`train_lhs`] produces. Lets a
/// ranker trained once on a labeled dataset (the paper trains on Subj) be
/// persisted and deployed on other datasets later — the §4.4 transfer
/// protocol as an artifact.
#[derive(Clone, Serialize, Deserialize)]
pub struct LhsArtifacts {
    /// The trained ranking model.
    pub ranker: TrainedRanker,
    /// The trained next-score predictor.
    pub predictor: TrainedPredictor,
    /// Feature layout the ranker was trained with.
    pub features: LhsFeatureConfig,
    /// Candidate-set size for deployment.
    pub candidate_pool: usize,
}

/// A concrete trained ranker (serializable counterpart of `dyn Ranker`).
#[derive(Clone, Serialize, Deserialize)]
pub enum TrainedRanker {
    /// LambdaMART ensemble.
    LambdaMart(LambdaMart),
    /// Pairwise-logistic linear ranker.
    Linear(LinearRanker),
}

/// A concrete trained predictor (serializable counterpart of
/// `dyn SequencePredictor`).
#[derive(Clone, Serialize, Deserialize)]
pub enum TrainedPredictor {
    /// Scalar LSTM.
    Lstm(LstmPredictor),
    /// AR(p) least squares.
    Ar(ArPredictor),
    /// Holt double exponential smoothing.
    Holt(HoltPredictor),
}

impl Ranker for TrainedRanker {
    fn score(&self, features: &[f64]) -> f64 {
        match self {
            Self::LambdaMart(m) => m.score(features),
            Self::Linear(m) => m.score(features),
        }
    }
}

impl SequencePredictor for TrainedPredictor {
    fn predict_next(&self, seq: &[f64]) -> f64 {
        match self {
            Self::Lstm(p) => p.predict_next(seq),
            Self::Ar(p) => p.predict_next(seq),
            Self::Holt(p) => p.predict_next(seq),
        }
    }
}

impl LhsArtifacts {
    /// Build the runtime selector from these artifacts.
    pub fn into_selector(self) -> LhsSelector {
        LhsSelector::new(
            Box::new(self.ranker),
            Box::new(self.predictor),
            self.features,
            self.candidate_pool,
        )
    }
}

/// A trained LHS selection component: ranker + predictor + feature
/// layout. Cheaply cloneable (the trained parts are shared), so one
/// trained selector can serve many runs.
#[derive(Clone)]
pub struct LhsSelector {
    ranker: std::sync::Arc<dyn Ranker>,
    predictor: std::sync::Arc<dyn SequencePredictor>,
    features: LhsFeatureConfig,
    /// Candidate-set size (union of top-entropy and top-LC slices,
    /// §4.4.1). Clamped to the pool size at selection time.
    candidate_pool: usize,
}

impl LhsSelector {
    /// Assemble a selector from pre-trained parts.
    pub fn new(
        ranker: Box<dyn Ranker>,
        predictor: Box<dyn SequencePredictor>,
        features: LhsFeatureConfig,
        candidate_pool: usize,
    ) -> Self {
        assert!(candidate_pool > 0, "candidate pool must be positive");
        Self {
            ranker: std::sync::Arc::from(ranker),
            predictor: std::sync::Arc::from(predictor),
            features,
            candidate_pool,
        }
    }

    /// The feature configuration the ranker was trained with.
    pub fn feature_config(&self) -> &LhsFeatureConfig {
        &self.features
    }

    /// Whether ranking features read the full posterior vector, so the
    /// driver must request [`EvalCaps::probs`] from the model.
    pub fn needs_probs(&self) -> bool {
        self.features.use_probs
    }

    /// Rank the candidate set and return up to `batch` positions into
    /// `unlabeled`, best first.
    pub fn select(
        &self,
        unlabeled: &[usize],
        evals: &[SampleEval],
        history: &HistoryStore,
        batch: usize,
    ) -> Vec<usize> {
        self.select_with_scratch(unlabeled, evals, history, batch, &mut Vec::new())
    }

    /// [`Self::select`] with a caller-owned scratch buffer for
    /// materializing each candidate's (possibly ring-wrapped) history
    /// window, so repeated rounds allocate no per-candidate sequence
    /// copies. The driver's `LhsSelect` stage reuses one buffer across
    /// the whole run.
    pub fn select_with_scratch(
        &self,
        unlabeled: &[usize],
        evals: &[SampleEval],
        history: &HistoryStore,
        batch: usize,
        seq_buf: &mut Vec<f64>,
    ) -> Vec<usize> {
        let candidates = candidate_set(evals, self.candidate_pool);
        let rows: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&pos| {
                history.seq(unlabeled[pos]).copy_into(seq_buf);
                self.features
                    .extract(seq_buf, &evals[pos], self.predictor.as_ref())
            })
            .collect();
        let scores = self.ranker.score_batch(&rows);
        let best = top_k(&scores, batch.min(candidates.len()));
        best.into_iter().map(|i| candidates[i]).collect()
    }
}

/// Build the candidate set of §4.4.1: the union of the top-`k/2` samples
/// by entropy and by least confidence. Returns positions into `evals`.
pub fn candidate_set(evals: &[SampleEval], pool: usize) -> Vec<usize> {
    let k = pool.min(evals.len());
    if k == evals.len() {
        return (0..evals.len()).collect();
    }
    let half = k.div_ceil(2);
    let ent: Vec<f64> = evals.iter().map(|e| e.entropy).collect();
    let lc: Vec<f64> = evals.iter().map(|e| e.least_confidence).collect();
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    let mut seen = vec![false; evals.len()];
    for &pos in top_k(&ent, half).iter().chain(top_k(&lc, half).iter()) {
        if !seen[pos] {
            seen[pos] = true;
            picked.push(pos);
        }
    }
    // Top up from entropy order if the union was smaller than k.
    if picked.len() < k {
        for pos in top_k(&ent, evals.len()) {
            if !seen[pos] {
                seen[pos] = true;
                picked.push(pos);
                if picked.len() == k {
                    break;
                }
            }
        }
    }
    picked
}

/// Configuration for the Algorithm 1 trainer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LhsTrainerConfig {
    /// The base strategy whose scores populate the historical sequences.
    pub base: BaseStrategy,
    /// Algorithm 1 outer iterations (ranking query groups).
    pub rounds: usize,
    /// Candidate-set size per round (model-retrain trials per round).
    pub candidates_per_round: usize,
    /// Initial labeled set size.
    pub init_labeled: usize,
    /// Candidates with the highest measured delta moved to `L` per round.
    pub add_per_round: usize,
    /// Bucket width for converting deltas into ranking levels; `0.0`
    /// buckets each group into four equal-width levels (the paper uses a
    /// fixed interval like 0.01, which assumes a known metric scale).
    pub level_interval: f64,
    /// Feature layout for the ranker.
    pub features: LhsFeatureConfig,
    /// Next-score predictor to train.
    pub predictor: PredictorKind,
    /// Ranking model to train.
    pub ranker: RankerKind,
    /// Candidate-set size used at *selection* time by the produced
    /// [`LhsSelector`].
    pub selector_candidate_pool: usize,
}

impl Default for LhsTrainerConfig {
    fn default() -> Self {
        Self {
            base: BaseStrategy::Entropy,
            rounds: 8,
            candidates_per_round: 24,
            init_labeled: 25,
            add_per_round: 5,
            level_interval: 0.0,
            features: LhsFeatureConfig::default(),
            predictor: PredictorKind::default(),
            ranker: RankerKind::default(),
            selector_candidate_pool: 75,
        }
    }
}

/// Train an LHS selector per Algorithm 1 (see [`train_lhs_artifacts`]
/// for the serializable form).
pub fn train_lhs<M>(
    prototype: &M,
    samples: &[M::Sample],
    labels: &[M::Label],
    eval_samples: &[M::Sample],
    eval_labels: &[M::Label],
    config: &LhsTrainerConfig,
    seed: u64,
) -> Result<LhsSelector, Error>
where
    M: Model + Clone,
    M::Sample: Clone,
    M::Label: Clone,
{
    train_lhs_artifacts(
        prototype,
        samples,
        labels,
        eval_samples,
        eval_labels,
        config,
        seed,
    )
    .map(LhsArtifacts::into_selector)
}

/// Train an LHS selector per Algorithm 1 on a fully labeled dataset
/// (the paper uses Subj) and a held-out evaluation split, returning the
/// serializable [`LhsArtifacts`].
///
/// Phase 1 simulates plain active learning with the base strategy to
/// collect historical sequences and trains the next-score predictor on
/// them. Phase 2 reruns the loop measuring `Eval(M′) − Eval(M)` for every
/// candidate, forming one ranking query group per round, and fits the
/// ranker.
pub fn train_lhs_artifacts<M>(
    prototype: &M,
    samples: &[M::Sample],
    labels: &[M::Label],
    eval_samples: &[M::Sample],
    eval_labels: &[M::Label],
    config: &LhsTrainerConfig,
    seed: u64,
) -> Result<LhsArtifacts, Error>
where
    M: Model + Clone,
    M::Sample: Clone,
    M::Label: Clone,
{
    assert_eq!(
        samples.len(),
        labels.len(),
        "training samples/labels misaligned"
    );
    assert_eq!(
        eval_samples.len(),
        eval_labels.len(),
        "eval samples/labels misaligned"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Beyond the base strategy's own needs, Algorithm 1 builds its
    // candidate set from entropy + LC and may featurize posteriors.
    let mut caps = config.base.caps();
    caps.entropy = true;
    caps.probs = caps.probs || config.features.use_probs;

    // ---- Phase 1: collect history sequences, train the predictor. ----
    let mut sim = Simulation::new(
        prototype.clone(),
        samples,
        labels,
        config.init_labeled,
        &mut rng,
    );
    for round in 0..config.rounds {
        sim.fit(&mut rng);
        let (unlabeled, base_scores) = sim.score_pool(config.base, &caps, seed, round, &mut rng)?;
        let batch = config.add_per_round.min(unlabeled.len());
        let picks = top_k(&base_scores, batch);
        let ids: Vec<usize> = picks.iter().map(|&p| unlabeled[p]).collect();
        sim.label(&ids);
    }
    let sequences = sim.history.non_empty_sequences();
    let predictor: TrainedPredictor = match &config.predictor {
        PredictorKind::Lstm(cfg) => {
            TrainedPredictor::Lstm(LstmPredictor::fit(&sequences, cfg.clone(), &mut rng))
        }
        PredictorKind::Ar { order } => TrainedPredictor::Ar(ArPredictor::fit(&sequences, *order)),
        PredictorKind::Holt => TrainedPredictor::Holt(HoltPredictor::fit(&sequences)),
    };

    // ---- Phase 2: Algorithm 1 — measure deltas, build ranking data. ----
    let mut sim = Simulation::new(
        prototype.clone(),
        samples,
        labels,
        config.init_labeled,
        &mut rng,
    );
    let eval_s: Vec<&M::Sample> = eval_samples.iter().collect();
    let eval_l: Vec<&M::Label> = eval_labels.iter().collect();
    let mut dataset = RankingDataset::new();
    for round in 0..config.rounds {
        sim.fit(&mut rng);
        let base_metric = sim.model.metric(&eval_s, &eval_l);
        let (unlabeled, _) = sim.score_pool(config.base, &caps, seed, round, &mut rng)?;
        if unlabeled.is_empty() {
            break;
        }
        let evals = &sim.last_evals;
        let candidates = candidate_set(evals, config.candidates_per_round);
        // Trial-retrain for every candidate in parallel (line 7 of Alg. 1).
        let labeled_ids = sim.pool.labeled().to_vec();
        let deltas: Vec<f64> = candidates
            .par_iter()
            .map(|&pos| {
                let id = unlabeled[pos];
                let mut trial = sim.model.clone();
                let mut trial_ids = labeled_ids.clone();
                trial_ids.push(id);
                let s: Vec<&M::Sample> = trial_ids.iter().map(|&i| &samples[i]).collect();
                let l: Vec<&M::Label> = trial_ids.iter().map(|&i| &labels[i]).collect();
                let mut trial_rng =
                    ChaCha8Rng::seed_from_u64(mix_seed(seed, round as u64, id as u64));
                trial.fit(&s, &l, &mut trial_rng);
                trial.metric(&eval_s, &eval_l) - base_metric
            })
            .collect();
        let rows: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&pos| {
                config.features.extract(
                    &sim.history.seq(unlabeled[pos]).to_vec(),
                    &evals[pos],
                    &predictor,
                )
            })
            .collect();
        let levels = bucket_levels(&deltas, config.level_interval);
        dataset.push(QueryGroup::new(rows, levels));
        // Line 11: move the highest-delta candidates into L.
        let best = top_k(&deltas, config.add_per_round.min(candidates.len()));
        let ids: Vec<usize> = best.iter().map(|&i| unlabeled[candidates[i]]).collect();
        sim.label(&ids);
    }

    let ranker: TrainedRanker = match &config.ranker {
        RankerKind::LambdaMart(cfg) => TrainedRanker::LambdaMart(LambdaMart::fit(&dataset, cfg)),
        RankerKind::Linear(cfg) => {
            TrainedRanker::Linear(LinearRanker::fit(&dataset, cfg, &mut rng))
        }
    };
    Ok(LhsArtifacts {
        ranker,
        predictor,
        features: config.features,
        candidate_pool: config.selector_candidate_pool,
    })
}

/// Convert raw improvement deltas into graded relevance levels (§4.4.3):
/// with a fixed `interval`, level = number of intervals above the group
/// minimum; with `interval == 0`, each group spans four equal-width
/// levels. Degenerate groups (all deltas equal) get all-zero levels.
pub fn bucket_levels(deltas: &[f64], interval: f64) -> Vec<f64> {
    if deltas.is_empty() {
        return Vec::new();
    }
    let min = deltas.iter().copied().fold(f64::INFINITY, f64::min);
    let max = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min) < 1e-12 {
        return vec![0.0; deltas.len()];
    }
    let width = if interval > 0.0 {
        interval
    } else {
        (max - min) / 4.0
    };
    deltas
        .iter()
        .map(|&d| {
            let level = ((d - min) / width).floor();
            // Cap so the max delta is its own level even with rounding.
            level.min(((max - min) / width).floor())
        })
        .collect()
}

/// Internal simulation state shared by the two phases of [`train_lhs`]:
/// the same [`Pool`] partition the driver uses, minus the pipeline
/// plumbing the trainer does not need.
struct Simulation<'a, M: Model> {
    model: M,
    samples: &'a [M::Sample],
    labels: &'a [M::Label],
    pool: Pool,
    history: HistoryStore,
    last_evals: Vec<SampleEval>,
}

impl<'a, M: Model> Simulation<'a, M> {
    fn new(
        model: M,
        samples: &'a [M::Sample],
        labels: &'a [M::Label],
        init: usize,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let n = samples.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut pool = Pool::new(n);
        pool.label_batch(&order[..init.min(n)]);
        Self {
            model,
            samples,
            labels,
            pool,
            history: HistoryStore::new(n),
            last_evals: Vec::new(),
        }
    }

    fn fit(&mut self, rng: &mut ChaCha8Rng) {
        let s: Vec<&M::Sample> = self
            .pool
            .labeled()
            .iter()
            .map(|&i| &self.samples[i])
            .collect();
        let l: Vec<&M::Label> = self
            .pool
            .labeled()
            .iter()
            .map(|&i| &self.labels[i])
            .collect();
        self.model.fit(&s, &l, rng);
    }

    /// Evaluate the unlabeled pool, appending base scores to the history.
    /// Returns the unlabeled ids and their base scores; evals are stashed
    /// in `last_evals` (parallel to the returned ids).
    fn score_pool(
        &mut self,
        base: BaseStrategy,
        caps: &crate::eval::EvalCaps,
        seed: u64,
        round: usize,
        rng: &mut ChaCha8Rng,
    ) -> Result<(Vec<usize>, Vec<f64>), Error> {
        let unlabeled: Vec<usize> = self.pool.unlabeled().to_vec();
        let model = &self.model;
        let samples = self.samples;
        self.last_evals = unlabeled
            .par_iter()
            .map(|&id| {
                model.eval_sample(&samples[id], caps, mix_seed(seed, round as u64, id as u64))
            })
            .collect();
        let mut scores = Vec::with_capacity(unlabeled.len());
        for eval in &self.last_evals {
            let r: f64 = rand::Rng::gen(rng);
            scores.push(base.base_score(eval, r)?);
        }
        for (&id, &s) in unlabeled.iter().zip(&scores) {
            self.history.append(id, s);
        }
        Ok((unlabeled, scores))
    }

    fn label(&mut self, ids: &[usize]) {
        for &id in ids {
            if !self.pool.is_labeled(id) {
                self.pool.label(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstPredictor(f64);
    impl SequencePredictor for ConstPredictor {
        fn predict_next(&self, _seq: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn feature_width_matches_extract() {
        let cfg = LhsFeatureConfig::default();
        let eval = SampleEval::from_probs(vec![0.6, 0.4]);
        let feats = cfg.extract(&[0.1, 0.2, 0.3], &eval, &ConstPredictor(0.5));
        assert_eq!(feats.len(), cfg.width());
    }

    #[test]
    fn history_features_left_padded() {
        let cfg = LhsFeatureConfig {
            window: 4,
            use_fluctuation: false,
            use_trend: false,
            use_prediction: false,
            use_probs: false,
            ..Default::default()
        };
        let eval = SampleEval::default();
        let feats = cfg.extract(&[0.9], &eval, &ConstPredictor(0.0));
        assert_eq!(feats, vec![0.0, 0.0, 0.0, 0.9]);
    }

    #[test]
    fn toggles_remove_feature_groups() {
        let full = LhsFeatureConfig::default();
        let no_trend = LhsFeatureConfig {
            use_trend: false,
            ..full
        };
        assert_eq!(full.width() - no_trend.width(), 2);
        let no_probs = LhsFeatureConfig {
            use_probs: false,
            ..full
        };
        assert_eq!(full.width() - no_probs.width(), full.n_prob_features);
        let with_acf = LhsFeatureConfig {
            use_autocorr: true,
            ..full
        };
        assert_eq!(with_acf.width() - full.width(), 1);
    }

    #[test]
    fn autocorr_feature_extracted_when_enabled() {
        let cfg = LhsFeatureConfig {
            window: 6,
            use_history: false,
            use_fluctuation: false,
            use_trend: false,
            use_prediction: false,
            use_probs: false,
            use_autocorr: true,
            n_prob_features: 2,
        };
        let eval = SampleEval::default();
        let osc = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let feats = cfg.extract(&osc, &eval, &ConstPredictor(0.0));
        assert_eq!(feats.len(), 1);
        assert!(feats[0] < -0.5, "oscillation ACF {}", feats[0]);
    }

    #[test]
    fn probs_sorted_and_padded() {
        let cfg = LhsFeatureConfig {
            window: 1,
            n_prob_features: 3,
            use_history: false,
            use_fluctuation: false,
            use_trend: false,
            use_prediction: false,
            use_probs: true,
            use_autocorr: false,
        };
        let eval = SampleEval::from_probs(vec![0.3, 0.7]);
        let feats = cfg.extract(&[], &eval, &ConstPredictor(0.0));
        assert_eq!(feats, vec![0.7, 0.3, 0.0]);
    }

    #[test]
    fn candidate_set_unions_entropy_and_lc() {
        // Sample 0: high entropy, low LC. Sample 1: low entropy, high LC.
        // Sample 2: low both. Pool of 2 must pick 0 and 1.
        let e0 = SampleEval {
            entropy: 1.0,
            least_confidence: 0.0,
            ..Default::default()
        };
        let e1 = SampleEval {
            entropy: 0.0,
            least_confidence: 1.0,
            ..Default::default()
        };
        let e2 = SampleEval::default();
        let picked = candidate_set(&[e0, e1, e2], 2);
        assert!(picked.contains(&0) && picked.contains(&1));
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn candidate_set_small_pool_returns_all() {
        let evals = vec![SampleEval::default(); 3];
        assert_eq!(candidate_set(&evals, 10), vec![0, 1, 2]);
    }

    #[test]
    fn candidate_set_tops_up_on_overlap() {
        // All samples identical: entropy-top and LC-top overlap fully; the
        // set must still reach the requested size.
        let evals = vec![SampleEval::from_probs(vec![0.5, 0.5]); 6];
        assert_eq!(candidate_set(&evals, 4).len(), 4);
    }

    #[test]
    fn bucket_levels_fixed_interval() {
        // The paper's worked example: interval 0.01 over
        // [0.01, 0.015, 0.02, 0.008, 0.025] → levels {0,0,1,0,1} relative
        // to min 0.008… the paper groups into 3 levels; with floor
        // semantics: (d - 0.008)/0.01 → [0.2,0.7,1.2,0,1.7] → [0,0,1,0,1].
        let levels = bucket_levels(&[0.01, 0.015, 0.02, 0.008, 0.025], 0.01);
        assert_eq!(levels, vec![0.0, 0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn bucket_levels_auto_spans_four_buckets() {
        let levels = bucket_levels(&[0.0, 0.25, 0.5, 0.75, 1.0], 0.0);
        assert_eq!(levels, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn bucket_levels_degenerate_and_empty() {
        assert_eq!(bucket_levels(&[0.5, 0.5], 0.0), vec![0.0, 0.0]);
        assert!(bucket_levels(&[], 0.01).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn selector_zero_pool_panics() {
        struct ZeroRanker;
        impl Ranker for ZeroRanker {
            fn score(&self, _f: &[f64]) -> f64 {
                0.0
            }
        }
        let _ = LhsSelector::new(
            Box::new(ZeroRanker),
            Box::new(ConstPredictor(0.0)),
            LhsFeatureConfig::default(),
            0,
        );
    }
}

//! LHS — Learn from Historical Sequences (§4.4, Algorithm 1).
//!
//! The implementation moved to the layered [`crate::learned`] module
//! family (`features` / `targets` / `artifacts` / `selector`); this
//! module re-exports the complete public surface under its historical
//! path, so `histal_core::lhs::{train_lhs, LhsSelector, ...}` keeps
//! compiling. The classic LHS configuration is byte-identical to the
//! pre-refactor monolith — see [`crate::learned::targets`] for the
//! contract.

pub use crate::learned::{
    bucket_levels, candidate_set, load_artifacts, save_artifacts, train_learned,
    train_learned_artifacts, train_lhs, train_lhs_artifacts, ArtifactProvenance, LearnedSelector,
    LearnedTrainerConfig, LhsArtifacts, LhsFeatureConfig, LhsSelector, LhsTrainerConfig,
    PoolMetaFeatures, PredictorKind, RankerKind, TargetKind, TrainedPredictor, TrainedRanker,
    ARTIFACT_MAGIC, ARTIFACT_VERSION, META_FEATURE_WIDTH,
};

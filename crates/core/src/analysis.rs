//! Post-run analysis: annotation-cost tables and selection statistics.
//!
//! These functions turn [`crate::driver::RunResult`]s into the numbers the
//! paper reports: Table 5 (samples needed to reach a target metric) and
//! Table 6 (mean WSHS / fluctuation scores of selected samples).

use serde::{Deserialize, Serialize};

use crate::driver::RunResult;

/// Number of annotated samples needed for the curve to first reach
/// `target`; `None` if it never does (the paper prints `500+`).
pub fn samples_to_target(result: &RunResult, target: f64) -> Option<usize> {
    result
        .curve
        .iter()
        .find(|p| p.metric >= target)
        .map(|p| p.n_labeled)
}

/// Format a [`samples_to_target`] entry the way Table 5 does: the count,
/// or `"{budget}+"` when the target was never reached.
pub fn format_cost(cost: Option<usize>, budget: usize) -> String {
    match cost {
        Some(n) => n.to_string(),
        None => format!("{budget}+"),
    }
}

/// Mean-of-rounds selection statistics (Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SelectionStats {
    /// Mean WSHS (window 3) score of selected samples across rounds.
    pub mean_wshs: f64,
    /// Mean history fluctuation of selected samples across rounds.
    pub mean_fluct: f64,
}

/// Aggregate the per-round diagnostics of a run. Rounds that selected
/// nothing are skipped.
pub fn selection_stats(result: &RunResult) -> SelectionStats {
    let rounds: Vec<_> = result
        .rounds
        .iter()
        .filter(|r| !r.selected.is_empty())
        .collect();
    if rounds.is_empty() {
        return SelectionStats::default();
    }
    let n = rounds.len() as f64;
    SelectionStats {
        mean_wshs: rounds.iter().map(|r| r.mean_wshs_of_selected).sum::<f64>() / n,
        mean_fluct: rounds.iter().map(|r| r.mean_fluct_of_selected).sum::<f64>() / n,
    }
}

/// Area under the learning curve (ALC): the trapezoidal integral of the
/// metric over labeled-set size, normalized by the x-span — i.e. the
/// *average* metric across the annotation budget. The standard scalar
/// summary of an AL run (Guyon et al., 2011 AL challenge); higher is
/// better. Returns the single metric for one-point curves and 0 for
/// empty ones.
pub fn area_under_curve(result: &RunResult) -> f64 {
    let c = &result.curve;
    match c.len() {
        0 => 0.0,
        1 => c[0].metric,
        _ => {
            let mut area = 0.0;
            for w in c.windows(2) {
                let dx = (w[1].n_labeled - w[0].n_labeled) as f64;
                area += dx * (w[0].metric + w[1].metric) / 2.0;
            }
            let span = (c[c.len() - 1].n_labeled - c[0].n_labeled) as f64;
            if span > 0.0 {
                area / span
            } else {
                c[0].metric
            }
        }
    }
}

/// Deficiency of `strategy` relative to `reference` (Baram et al. 2004):
/// the ratio of the areas *above* each curve up to the shared final
/// metric ceiling. Values < 1 mean `strategy` dominates `reference`;
/// 1 means parity. Returns 1 for degenerate inputs.
pub fn deficiency(strategy: &RunResult, reference: &RunResult) -> f64 {
    assert_eq!(
        strategy.curve.len(),
        reference.curve.len(),
        "curves must align for deficiency"
    );
    if strategy.curve.is_empty() {
        return 1.0;
    }
    let ceiling = strategy
        .curve
        .iter()
        .chain(&reference.curve)
        .map(|p| p.metric)
        .fold(f64::NEG_INFINITY, f64::max);
    let above = |r: &RunResult| -> f64 { r.curve.iter().map(|p| ceiling - p.metric).sum::<f64>() };
    let (num, den) = (above(strategy), above(reference));
    if den <= 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Average several learning curves pointwise (for cross-validation folds).
/// All runs must share labeled-set sizes; the result reuses the first
/// run's strategy name and drops per-round records.
pub fn average_curves(results: &[RunResult]) -> RunResult {
    assert!(!results.is_empty(), "need at least one run to average");
    let first = &results[0];
    for r in results {
        assert_eq!(
            r.curve.len(),
            first.curve.len(),
            "curves must have equal length to average"
        );
    }
    let curve = first
        .curve
        .iter()
        .enumerate()
        .map(|(i, p)| crate::driver::CurvePoint {
            n_labeled: p.n_labeled,
            metric: results.iter().map(|r| r.curve[i].metric).sum::<f64>() / results.len() as f64,
        })
        .collect();
    RunResult {
        strategy_name: first.strategy_name.clone(),
        curve,
        rounds: Vec::new(),
        history: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CurvePoint, RoundRecord};

    fn run(points: &[(usize, f64)]) -> RunResult {
        RunResult {
            strategy_name: "test".into(),
            curve: points
                .iter()
                .map(|&(n, m)| CurvePoint {
                    n_labeled: n,
                    metric: m,
                })
                .collect(),
            rounds: Vec::new(),
            history: Vec::new(),
        }
    }

    #[test]
    fn samples_to_target_first_crossing() {
        let r = run(&[(25, 0.5), (50, 0.71), (75, 0.73), (100, 0.74)]);
        assert_eq!(samples_to_target(&r, 0.72), Some(75));
        assert_eq!(samples_to_target(&r, 0.5), Some(25));
        assert_eq!(samples_to_target(&r, 0.9), None);
    }

    #[test]
    fn format_cost_matches_table5_style() {
        assert_eq!(format_cost(Some(280), 500), "280");
        assert_eq!(format_cost(None, 500), "500+");
    }

    #[test]
    fn selection_stats_averages_rounds() {
        let mut r = run(&[(10, 0.5)]);
        r.rounds = vec![
            RoundRecord {
                round: 0,
                selected: vec![1],
                mean_wshs_of_selected: 1.0,
                mean_fluct_of_selected: 0.2,
                fit_ms: 0.0,
                eval_ms: 0.0,
                score_ms: 0.0,
                select_ms: 0.0,
            },
            RoundRecord {
                round: 1,
                selected: vec![2],
                mean_wshs_of_selected: 3.0,
                mean_fluct_of_selected: 0.4,
                fit_ms: 0.0,
                eval_ms: 0.0,
                score_ms: 0.0,
                select_ms: 0.0,
            },
            RoundRecord {
                round: 2,
                selected: vec![],
                mean_wshs_of_selected: 99.0,
                mean_fluct_of_selected: 99.0,
                fit_ms: 0.0,
                eval_ms: 0.0,
                score_ms: 0.0,
                select_ms: 0.0,
            },
        ];
        let s = selection_stats(&r);
        assert!((s.mean_wshs - 2.0).abs() < 1e-12);
        assert!((s.mean_fluct - 0.3).abs() < 1e-12);
    }

    #[test]
    fn selection_stats_empty() {
        let r = run(&[(10, 0.5)]);
        assert_eq!(selection_stats(&r), SelectionStats::default());
    }

    #[test]
    fn auc_hand_worked() {
        // Trapezoid over [10, 30]: (10*(0.4+0.6)/2 + 10*(0.6+0.8)/2)/20 = 0.6
        let r = run(&[(10, 0.4), (20, 0.6), (30, 0.8)]);
        assert!((area_under_curve(&r) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_curves() {
        assert_eq!(area_under_curve(&run(&[])), 0.0);
        assert_eq!(area_under_curve(&run(&[(10, 0.7)])), 0.7);
        // Two points at the same x: falls back to the first metric.
        assert_eq!(area_under_curve(&run(&[(10, 0.5), (10, 0.9)])), 0.5);
    }

    #[test]
    fn auc_orders_dominating_curves() {
        let better = run(&[(10, 0.5), (20, 0.7), (30, 0.8)]);
        let worse = run(&[(10, 0.4), (20, 0.5), (30, 0.8)]);
        assert!(area_under_curve(&better) > area_under_curve(&worse));
    }

    #[test]
    fn deficiency_below_one_for_dominating_strategy() {
        let better = run(&[(10, 0.6), (20, 0.7), (30, 0.8)]);
        let worse = run(&[(10, 0.4), (20, 0.5), (30, 0.8)]);
        let d = deficiency(&better, &worse);
        assert!(d < 1.0, "deficiency {d}");
        assert!(deficiency(&worse, &better) > 1.0);
    }

    #[test]
    fn deficiency_identity_is_one() {
        let r = run(&[(10, 0.5), (20, 0.6)]);
        assert!((deficiency(&r, &r) - 1.0).abs() < 1e-12);
        assert_eq!(deficiency(&run(&[]), &run(&[])), 1.0);
    }

    #[test]
    fn average_curves_pointwise() {
        let a = run(&[(10, 0.4), (20, 0.6)]);
        let b = run(&[(10, 0.6), (20, 0.8)]);
        let avg = average_curves(&[a, b]);
        assert!((avg.curve[0].metric - 0.5).abs() < 1e-12);
        assert!((avg.curve[1].metric - 0.7).abs() < 1e-12);
        assert_eq!(avg.curve[0].n_labeled, 10);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn average_mismatched_curves_panics() {
        let a = run(&[(10, 0.4)]);
        let b = run(&[(10, 0.6), (20, 0.8)]);
        let _ = average_curves(&[a, b]);
    }
}

//! Long-lived interactive sessions: the AL loop with the annotate
//! boundary turned inside out.
//!
//! [`ActiveLearner::run_until`](crate::driver::ActiveLearner::run_until)
//! drives the round pipeline to completion, consulting an
//! [`Oracle`](crate::pipeline::Oracle) that must answer inside the round
//! — the paper's simulated-annotator protocol. A deployment with human
//! annotators inverts that control flow: labels arrive late, out of
//! order, and in pieces. [`Session`] is the same pipeline (stage for
//! stage, RNG draw for RNG draw — equivalence is property-tested against
//! the driver) restructured as a state machine the *caller* advances:
//!
//! ```text
//!   step()    → AwaitingLabels(LabelRequest { ticket, indices })
//!   submit()  ← LabelResponse { ticket, labels }   (partial, repeated,
//!   step()    → AwaitingLabels(..)                  any order)
//!   …
//!   step()    → Done            → result()
//! ```
//!
//! [`Session::step`] runs every compute stage (fit/eval/score/select)
//! until the loop cannot continue without labels, then parks on a
//! ticketed [`LabelRequest`]. [`Session::submit`] accepts label
//! responses with *at-least-once* delivery semantics: chunks may arrive
//! out of order and duplicated; a duplicate that agrees with the
//! established label is acknowledged idempotently, one that disagrees is
//! an [`ErrorKind::Conflict`]. When the last label of a ticket lands,
//! the batch is applied to the pool **in request order** — so the pool
//! state after a ticket is a pure function of the label *values*, never
//! of their arrival order (property-tested in `tests/live_props.rs`).
//!
//! ## Snapshot / restore
//!
//! Every run is deterministic given the seed and the sequence of label
//! values, so a session's complete state compresses to its fulfilled
//! tickets: [`Session::snapshot`] returns exactly that (plus any labels
//! of the still-pending ticket), and
//! [`SessionBuilder::restore`](crate::session::SessionBuilder::restore)
//! replays it through the same deterministic pipeline, reproducing the
//! pre-snapshot state byte for byte. This is the public API behind the
//! experiment binary's `resume` subcommand and `histal-serve`'s
//! kill-`-9`-and-restart story; persistence of the snapshot (or of the
//! label events it is derived from) belongs to the caller — the server
//! journals label events through `histal-obs` and rebuilds snapshots on
//! boot.

use std::sync::Arc;

use rand::prelude::SliceRandom;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_obs::session_span;
use histal_obs::trace::Level;
use histal_text::{LshIndex, NeighborIndex, PoolGeometry, SparseVec};

use crate::driver::{
    mix_seed, selection_diagnostics, CurvePoint, PoolConfig, RoundRecord, RunResult,
};
use crate::error::Error;
use crate::eval::EvalCaps;
use crate::history::HistoryStore;
use crate::lhs::LhsSelector;
use crate::model::Model;
use crate::pipeline::{
    apply_response, BaseScore, EvalPool, Fit, FoldHistory, HkldFold, KCenterSelect, LabelRequest,
    LabelResponse, LhsSelect, MmrSelect, PolicyFold, RoundCtx, ScoreBase, Select, SelectCtx,
    Ticket, TopKSelect,
};
use crate::pool::{Pool, SampleId};
use crate::session::{fingerprint, SessionObs};
use crate::stopping::StopReason;
use crate::strategy::combinators::apply_density;
use crate::strategy::Strategy;

/// What [`Session::step`] left the session waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStep {
    /// The loop cannot continue without labels; the outstanding request
    /// is available via [`Session::pending`].
    AwaitingLabels,
    /// All rounds are complete; [`Session::result`] is available.
    Done,
}

/// Observer of interim learning-curve progress, invoked after each
/// curve point is recorded (once per round's pre-selection fit, plus the
/// final fit). The callback runs *between* pipeline stages with only a
/// shared view of the curve, so installing one cannot perturb RNG
/// consumption, stage order, or span structure — the streamed run stays
/// byte-identical to an unobserved one.
///
/// This is the hook behind the adaptive grid executor: the scheduler
/// reads interim curves between rounds to decide which cells keep
/// running.
pub trait RoundObserver: Send {
    /// One new curve point was recorded; `curve` is the full curve so
    /// far (the new point is `curve.last()`).
    fn on_round(&mut self, curve: &[CurvePoint]);
}

/// What one [`Session::submit`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmitOutcome {
    /// Labels newly recorded by this call.
    pub accepted: usize,
    /// Labels that were already established (idempotent re-delivery).
    pub duplicates: usize,
    /// Labels the pending ticket still waits for after this call.
    pub remaining: usize,
    /// `true` if this call completed the ticket and applied the batch.
    pub batch_complete: bool,
}

/// A point-in-time summary of a session, cheap to produce and
/// serializable (the server's `session-status` payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStatus {
    /// Completed selection rounds.
    pub round: usize,
    /// Configured selection rounds.
    pub total_rounds: usize,
    /// Labeled samples.
    pub n_labeled: usize,
    /// Unlabeled samples.
    pub n_unlabeled: usize,
    /// Outstanding ticket, if the session is awaiting labels.
    pub pending_ticket: Option<Ticket>,
    /// Labels the outstanding ticket still needs.
    pub pending_remaining: usize,
    /// `true` once the run is complete.
    pub done: bool,
    /// Most recent learning-curve metric, if any round has been fitted.
    pub last_metric: Option<f64>,
}

/// One fulfilled ticket: the labels that answered it, in request-index
/// order. The unit of [`SessionSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TicketLabels<L> {
    /// The fulfilled ticket.
    pub ticket: Ticket,
    /// `(pool id, label)` in the order the request listed the ids.
    pub labels: Vec<(SampleId, L)>,
}

/// The complete durable state of a [`Session`], as an event log: because
/// the pipeline is deterministic given `(configuration, seed, label
/// values)`, the fulfilled tickets *are* the state. Restore with
/// [`SessionBuilder::restore`](crate::session::SessionBuilder::restore),
/// which replays the log and leaves the session exactly where it was —
/// including a partially-fulfilled pending ticket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot<L> {
    /// Snapshot schema version (currently 1).
    pub version: u32,
    /// Fingerprint of the session configuration (strategy, loop config,
    /// seed); restore refuses a snapshot whose hash does not match the
    /// builder it is replayed on.
    pub config_hash: u64,
    /// The session RNG seed.
    pub seed: u64,
    /// Fulfilled tickets, in ticket order.
    pub tickets: Vec<TicketLabels<L>>,
    /// Labels already received for the pending (unfulfilled) ticket.
    pub partial: Vec<(SampleId, L)>,
}

/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The outstanding labeling work of a session.
struct PendingBatch<L> {
    request: LabelRequest,
    /// Received labels, parallel to `request.indices`.
    got: Vec<Option<L>>,
    remaining: usize,
    /// Round bookkeeping captured at selection time; `None` for the
    /// initial random batch (ticket 0), which precedes round 0.
    round_info: Option<PendingRound>,
}

/// Diagnostics and timings frozen when the batch was selected, applied
/// to the [`RoundRecord`] once the ticket completes.
struct PendingRound {
    round: usize,
    mean_wshs: f64,
    mean_fluct: f64,
    fit_ms: f64,
    eval_ms: f64,
    score_ms: f64,
    select_ms: f64,
}

/// Where the state machine stands between calls.
enum Phase {
    /// Nothing has run; the first `step` draws the initial random set.
    Created,
    /// A ticket is outstanding.
    AwaitingLabels,
    /// Labels applied; the next `step` computes round `round` (or the
    /// final fit when rounds are exhausted).
    RoundReady,
    /// Run complete.
    Done,
}

/// An interactive AL session: the staged round pipeline with the caller
/// in control of the annotate boundary. Construct via
/// [`SessionBuilder::build_session`](crate::session::SessionBuilder::build_session);
/// see the [module docs](self) for the protocol.
pub struct Session<M: Model> {
    model: M,
    samples: Vec<M::Sample>,
    revealed: Vec<Option<M::Label>>,
    /// Hidden gold labels, retained when the session was built via
    /// `pool()` — lets simulated deployments answer their own tickets
    /// ([`Session::answer_from_hidden`]).
    hidden: Option<Vec<M::Label>>,
    test_samples: Vec<M::Sample>,
    test_labels: Vec<M::Label>,
    strategy: Strategy,
    /// Shared trained selector (see [`LhsSelect`]); kept for caps and
    /// naming, shared with the select stage via [`Arc`].
    lhs: Option<Arc<LhsSelector>>,
    config: PoolConfig,
    rng: ChaCha8Rng,
    seed: u64,
    obs: SessionObs,
    fit_stage: Box<dyn Fit<M> + Send>,
    eval_stage: Box<dyn EvalPool<M> + Send>,
    score_stage: BaseScore,
    fold_stage: Box<dyn FoldHistory + Send>,
    select_stage: Box<dyn Select + Send>,
    caps: EvalCaps,
    pool: Pool,
    history: HistoryStore,
    geometry: Option<PoolGeometry>,
    ann_index: Option<LshIndex>,
    ctx: RoundCtx,
    curve: Vec<CurvePoint>,
    rounds_log: Vec<RoundRecord>,
    /// Next round to compute (= completed selection rounds).
    round: usize,
    phase: Phase,
    next_ticket: Ticket,
    pending: Option<PendingBatch<M::Label>>,
    /// Fulfilled tickets, for [`Session::snapshot`].
    fulfilled: Vec<TicketLabels<M::Label>>,
    result: Option<RunResult>,
    stop_reason: Option<StopReason>,
    config_hash: u64,
    round_observer: Option<Box<dyn RoundObserver>>,
}

impl<M: Model> Session<M> {
    /// Lowering target of
    /// [`SessionBuilder::build_session`](crate::session::SessionBuilder::build_session);
    /// mirrors the construction order of `ActiveLearner::run_until` so
    /// the two byte-match.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        model: M,
        samples: Vec<M::Sample>,
        hidden: Option<Vec<M::Label>>,
        test_samples: Vec<M::Sample>,
        test_labels: Vec<M::Label>,
        strategy: Strategy,
        lhs: Option<LhsSelector>,
        config: PoolConfig,
        representations: Option<Vec<SparseVec>>,
        seed: u64,
        obs: SessionObs,
    ) -> Self {
        use rand::SeedableRng;
        let n = samples.len();
        let mut history = match config.history_max_len {
            Some(cap) => HistoryStore::with_max_len(n, cap),
            None => HistoryStore::new(n),
        };
        if strategy.hkld.is_none() {
            let window = strategy.history.window();
            if window > 0 {
                history = history.with_rolling(window);
            }
        }
        let geometry: Option<PoolGeometry> = representations.as_ref().and_then(|reps| {
            let needed = strategy.density.is_some() || strategy.mmr.is_some() || strategy.kcenter;
            needed.then(|| PoolGeometry::build(reps))
        });
        let ann_index: Option<LshIndex> = match (&config.ann, &geometry) {
            (Some(cfg), Some(geom)) => Some(LshIndex::build(geom, cfg, mix_seed(seed, 0xA11, 0))),
            _ => None,
        };
        let score_stage = BaseScore {
            base: strategy.base,
        };
        let fold_stage: Box<dyn FoldHistory + Send> = match strategy.hkld {
            Some(k) => Box::new(HkldFold::new(k, n, config.history_max_len)),
            None => Box::new(PolicyFold::new(strategy.history)),
        };
        let lhs = lhs.map(Arc::new);
        let select_stage: Box<dyn Select + Send> = if let Some(lhs) = &lhs {
            Box::new(LhsSelect(Arc::clone(lhs)))
        } else if let (Some(cfg), true) = (strategy.mmr, geometry.is_some()) {
            Box::new(MmrSelect(cfg))
        } else if strategy.kcenter && geometry.is_some() {
            Box::new(KCenterSelect)
        } else {
            Box::new(TopKSelect)
        };
        let mut caps = strategy.base.caps();
        if strategy.hkld.is_some() {
            caps.probs = true;
        }
        if let Some(lhs) = &lhs {
            caps.entropy = true;
            caps.probs = caps.probs || lhs.needs_probs();
        }
        let config_hash = session_config_hash(&strategy, lhs.is_some(), &config, seed);
        Self {
            model,
            revealed: (0..n).map(|_| None).collect(),
            samples,
            hidden,
            test_samples,
            test_labels,
            strategy,
            lhs,
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
            obs,
            fit_stage: Box::new(crate::pipeline::RetrainFit),
            eval_stage: Box::new(crate::pipeline::ParallelEval),
            score_stage,
            fold_stage,
            select_stage,
            caps,
            pool: Pool::new(n),
            history,
            geometry,
            ann_index,
            ctx: RoundCtx::new(),
            curve: Vec::with_capacity(config.rounds + 1),
            rounds_log: Vec::with_capacity(config.rounds),
            config,
            round: 0,
            phase: Phase::Created,
            next_ticket: 0,
            pending: None,
            fulfilled: Vec::new(),
            result: None,
            stop_reason: None,
            config_hash,
            round_observer: None,
        }
    }

    /// Install a [`RoundObserver`] that is called after every recorded
    /// curve point. Attach before the first [`Session::step`] to see the
    /// whole curve; the observer never affects the computation (see the
    /// trait docs).
    pub fn set_round_observer(&mut self, observer: Box<dyn RoundObserver>) {
        self.round_observer = Some(observer);
    }

    /// Fingerprint of the session configuration; stamped on snapshots.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// The session RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Advance the pipeline as far as it can go without labels: runs
    /// fit/eval/score/select for as many rounds as have labels, then
    /// either parks on a [`LabelRequest`] (see [`Session::pending`]) or
    /// finishes. Idempotent while waiting: stepping an awaiting session
    /// returns [`SessionStep::AwaitingLabels`] again without computing.
    pub fn step(&mut self) -> Result<SessionStep, Error> {
        loop {
            match self.phase {
                Phase::AwaitingLabels => return Ok(SessionStep::AwaitingLabels),
                Phase::Done => return Ok(SessionStep::Done),
                Phase::Created => {
                    // Initial random labeled set s₀: same shuffle, same
                    // RNG stream position as the batch driver.
                    let n = self.samples.len();
                    let mut order: Vec<SampleId> = (0..n).collect();
                    order.shuffle(&mut self.rng);
                    let init = self.config.init_labeled.min(n);
                    self.issue_ticket(order[..init].to_vec(), None);
                }
                Phase::RoundReady => {
                    if self.round >= self.config.rounds {
                        // Metric after the final batch, then done.
                        self.fit_and_record();
                        self.finish(StopReason::RoundsExhausted);
                    } else {
                        self.compute_round()?;
                    }
                }
            }
        }
    }

    /// Compute one round up to (and including) batch selection, then
    /// park on the round's ticket. Stage order, RNG consumption and
    /// tie-breaks replicate `ActiveLearner::run_until` exactly.
    fn compute_round(&mut self) -> Result<(), Error> {
        let round = self.round;
        self.ctx.begin(round);
        let _round_span = session_span!(
            self.obs.subscriber(),
            Level::Debug,
            "al.round",
            round = round,
            n_labeled = self.pool.n_labeled(),
        );
        let fit_start = std::time::Instant::now();
        self.fit_and_record();
        self.ctx.timers.fit_ms = fit_start.elapsed().as_secs_f64() * 1e3;
        if self.pool.n_unlabeled() == 0 {
            // The metric for the fully-labeled pool was just recorded;
            // finishing here matches the driver's `recorded_final` path.
            self.finish(StopReason::PoolExhausted);
            return Ok(());
        }

        let eval_start = std::time::Instant::now();
        let eval_span = session_span!(
            self.obs.subscriber(),
            Level::Debug,
            "al.eval",
            n_unlabeled = self.pool.n_unlabeled(),
        );
        self.eval_stage.eval(
            &self.model,
            &self.samples,
            self.pool.unlabeled(),
            &self.caps,
            self.seed,
            round,
            &mut self.ctx.evals,
        );
        drop(eval_span);
        self.ctx.timers.eval_ms = eval_start.elapsed().as_secs_f64() * 1e3;

        let score_start = std::time::Instant::now();
        let score_span = session_span!(self.obs.subscriber(), Level::Debug, "al.score");
        self.score_stage
            .score(&self.ctx.evals, &mut self.rng, &mut self.ctx.base_scores)?;
        self.fold_stage.record(
            self.pool.unlabeled(),
            &self.ctx.base_scores,
            &self.ctx.evals,
            &mut self.history,
        );
        self.fold_stage.fold(
            self.pool.unlabeled(),
            &self.history,
            &mut self.ctx.final_scores,
        );
        if let (Some(cfg), Some(geom)) = (&self.strategy.density, &self.geometry) {
            apply_density(
                &mut self.ctx.final_scores,
                self.pool.unlabeled(),
                geom,
                self.ann_index.as_ref().map(|i| i as &dyn NeighborIndex),
                cfg,
                &mut self.rng,
                &mut self.ctx.sim,
            );
        }
        drop(score_span);
        self.ctx.timers.score_ms = score_start.elapsed().as_secs_f64() * 1e3;

        let pick_start = std::time::Instant::now();
        let select_span = session_span!(self.obs.subscriber(), Level::Debug, "al.select");
        let batch = self.config.batch_size.min(self.pool.n_unlabeled());
        let picked_positions = self.select_stage.select(SelectCtx {
            scores: &self.ctx.final_scores,
            unlabeled: self.pool.unlabeled(),
            evals: &self.ctx.evals,
            history: &self.history,
            geometry: self.geometry.as_ref(),
            index: self.ann_index.as_ref().map(|i| i as &dyn NeighborIndex),
            batch,
            round,
            n_labeled: self.pool.n_labeled(),
            scratch: &mut self.ctx.sim,
            seq_buf: &mut self.ctx.seq_buf,
        });
        drop(select_span);
        self.ctx.timers.select_ms = pick_start.elapsed().as_secs_f64() * 1e3;

        let selected: Vec<SampleId> = picked_positions
            .iter()
            .map(|&p| self.pool.unlabeled()[p])
            .collect();
        let (mean_wshs, mean_fluct) =
            selection_diagnostics(&selected, &self.history, &mut self.ctx.seq_buf);
        let info = PendingRound {
            round,
            mean_wshs,
            mean_fluct,
            fit_ms: self.ctx.timers.fit_ms,
            eval_ms: self.ctx.timers.eval_ms,
            score_ms: self.ctx.timers.score_ms,
            select_ms: self.ctx.timers.select_ms,
        };
        self.issue_ticket(selected, Some(info));
        Ok(())
    }

    /// Park on a new ticket for `indices`.
    fn issue_ticket(&mut self, indices: Vec<SampleId>, round_info: Option<PendingRound>) {
        let request = LabelRequest {
            ticket: self.next_ticket,
            indices,
        };
        self.next_ticket += 1;
        let n = request.indices.len();
        self.pending = Some(PendingBatch {
            got: (0..n).map(|_| None).collect(),
            remaining: n,
            request,
            round_info,
        });
        self.phase = Phase::AwaitingLabels;
    }

    /// The outstanding labeling request, if the session awaits labels.
    pub fn pending(&self) -> Option<&LabelRequest> {
        self.pending.as_ref().map(|p| &p.request)
    }

    /// Answer the outstanding request from the hidden gold labels the
    /// session was built with (`pool()` construction) — the simulated
    /// annotator. `None` when nothing is pending or no hidden labels
    /// were retained.
    pub fn answer_from_hidden(&self) -> Option<LabelResponse<M::Label>> {
        let pending = self.pending.as_ref()?;
        let hidden = self.hidden.as_ref()?;
        Some(LabelResponse {
            ticket: pending.request.ticket,
            labels: pending
                .request
                .indices
                .iter()
                .map(|&id| (id, hidden[id].clone()))
                .collect(),
        })
    }

    /// Completed-run result, once [`Session::step`] returned
    /// [`SessionStep::Done`].
    pub fn result(&self) -> Option<&RunResult> {
        self.result.as_ref()
    }

    /// Why the run stopped, once done.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop_reason
    }

    /// The learning curve recorded so far.
    pub fn curve(&self) -> &[CurvePoint] {
        &self.curve
    }

    /// Per-round records completed so far.
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.rounds_log
    }

    /// Cheap serializable summary (the `session-status` payload).
    pub fn status(&self) -> SessionStatus {
        SessionStatus {
            round: self.round,
            total_rounds: self.config.rounds,
            n_labeled: self.pool.n_labeled(),
            n_unlabeled: self.pool.n_unlabeled(),
            pending_ticket: self.pending.as_ref().map(|p| p.request.ticket),
            pending_remaining: self.pending.as_ref().map_or(0, |p| p.remaining),
            done: matches!(self.phase, Phase::Done),
            last_metric: self.curve.last().map(|p| p.metric),
        }
    }

    fn fit_and_record(&mut self) {
        let _fit_span = session_span!(
            self.obs.subscriber(),
            Level::Debug,
            "al.fit",
            n_labeled = self.pool.n_labeled(),
        );
        let samples: Vec<&M::Sample> = self
            .pool
            .labeled()
            .iter()
            .map(|&i| &self.samples[i])
            .collect();
        let labels: Vec<&M::Label> = self
            .pool
            .labeled()
            .iter()
            .map(|&i| {
                self.revealed[i]
                    .as_ref()
                    .expect("labeled sample has a revealed label")
            })
            .collect();
        let test_s: Vec<&M::Sample> = self.test_samples.iter().collect();
        let test_l: Vec<&M::Label> = self.test_labels.iter().collect();
        let metric = self.fit_stage.fit_measure(
            &mut self.model,
            &samples,
            &labels,
            &test_s,
            &test_l,
            &mut self.rng,
        );
        self.curve.push(CurvePoint {
            n_labeled: self.pool.n_labeled(),
            metric,
        });
        if let Some(observer) = &mut self.round_observer {
            observer.on_round(&self.curve);
        }
    }

    /// Finish the run now with the rounds completed so far — the
    /// adaptive scheduler's early-stop path. The truncated
    /// [`RunResult`] is exactly the prefix a full run would have
    /// produced (the pipeline never looks ahead), so a pruned run is
    /// journal-compatible with any later decision to extend it. No-op
    /// if the session is already done.
    pub fn finish_early(&mut self, reason: StopReason) {
        if !matches!(self.phase, Phase::Done) {
            self.finish(reason);
        }
    }

    fn finish(&mut self, reason: StopReason) {
        let strategy_name = if self.lhs.is_some() {
            format!("LHS({})", self.strategy.base.name())
        } else {
            self.strategy.name()
        };
        let history = if self.config.record_history {
            std::mem::replace(&mut self.history, HistoryStore::new(0)).into_sequences()
        } else {
            Vec::new()
        };
        self.result = Some(RunResult {
            strategy_name,
            curve: self.curve.clone(),
            rounds: self.rounds_log.clone(),
            history,
        });
        self.stop_reason = Some(reason);
        self.phase = Phase::Done;
    }
}

impl<M: Model> Session<M>
where
    M::Label: PartialEq,
{
    /// Deliver labels for the outstanding ticket. At-least-once
    /// semantics: any subset of the requested ids, in any order, any
    /// number of times —
    ///
    /// * a label for a slot not yet filled is **accepted**;
    /// * a re-delivery that agrees with the established label (pending
    ///   or already applied) is counted as a **duplicate** and otherwise
    ///   ignored;
    /// * a re-delivery that *disagrees* is an [`ErrorKind::Conflict`] —
    ///   first write wins, and the conflict never reaches the pool;
    /// * a label for a sample no ticket asked about is
    ///   [`ErrorKind::NotFound`], as is a ticket that was never issued.
    ///
    /// When the last slot fills, the batch is applied in request order
    /// and the round is recorded; the *session journal side effects*
    /// (round record, metrics) happen exactly once, here. The next
    /// [`Session::step`] then computes the following round.
    ///
    /// [`ErrorKind::Conflict`]: crate::error::ErrorKind::Conflict
    /// [`ErrorKind::NotFound`]: crate::error::ErrorKind::NotFound
    pub fn submit(&mut self, response: &LabelResponse<M::Label>) -> Result<SubmitOutcome, Error> {
        if response.ticket >= self.next_ticket {
            return Err(Error::not_found("ticket", response.ticket.to_string()));
        }
        let mut accepted = 0;
        let mut duplicates = 0;
        for (id, label) in &response.labels {
            let id = *id;
            if id >= self.samples.len() {
                return Err(Error::not_found("sample", id.to_string()));
            }
            if self.pool.is_labeled(id) {
                // The ticket that asked for this id already completed.
                match &self.revealed[id] {
                    Some(existing) if existing == label => duplicates += 1,
                    _ => {
                        return Err(Error::conflict(format!(
                            "sample {id} is already labeled with a different value"
                        )))
                    }
                }
                continue;
            }
            let pending = self
                .pending
                .as_mut()
                .ok_or_else(|| Error::not_found("sample awaiting labels", id.to_string()))?;
            if response.ticket != pending.request.ticket {
                return Err(Error::conflict(format!(
                    "ticket {} is not the pending ticket {}",
                    response.ticket, pending.request.ticket
                )));
            }
            let pos = pending
                .request
                .indices
                .iter()
                .position(|&i| i == id)
                .ok_or_else(|| Error::not_found("sample awaiting labels", id.to_string()))?;
            match &pending.got[pos] {
                Some(existing) if existing == label => duplicates += 1,
                Some(_) => {
                    return Err(Error::conflict(format!(
                        "sample {id} was already submitted with a different label \
                         on ticket {}",
                        response.ticket
                    )))
                }
                None => {
                    pending.got[pos] = Some(label.clone());
                    pending.remaining -= 1;
                    accepted += 1;
                }
            }
        }
        let remaining = self.pending.as_ref().map_or(0, |p| p.remaining);
        let batch_complete = self.pending.is_some() && remaining == 0;
        if batch_complete {
            self.apply_pending()?;
        }
        Ok(SubmitOutcome {
            accepted,
            duplicates,
            remaining,
            batch_complete,
        })
    }

    /// Apply the completed pending ticket: reveal labels in request
    /// order, update the pool, record the round.
    fn apply_pending(&mut self) -> Result<(), Error> {
        let pending = self.pending.take().expect("pending batch present");
        let labels: Vec<(SampleId, M::Label)> = pending
            .request
            .indices
            .iter()
            .zip(pending.got)
            .map(|(&id, l)| (id, l.expect("complete ticket has every label")))
            .collect();
        let response = LabelResponse {
            ticket: pending.request.ticket,
            labels,
        };
        apply_response(
            &pending.request,
            &response,
            &mut self.pool,
            &mut self.revealed,
        );
        self.fulfilled.push(TicketLabels {
            ticket: response.ticket,
            labels: response.labels,
        });
        if let Some(info) = pending.round_info {
            let record = RoundRecord {
                round: info.round,
                selected: pending.request.indices,
                mean_wshs_of_selected: info.mean_wshs,
                mean_fluct_of_selected: info.mean_fluct,
                fit_ms: info.fit_ms,
                eval_ms: info.eval_ms,
                score_ms: info.score_ms,
                select_ms: info.select_ms,
            };
            self.obs.publish_round(&record)?;
            self.rounds_log.push(record);
            self.round = info.round + 1;
        }
        self.phase = Phase::RoundReady;
        Ok(())
    }

    /// The session's durable state: every fulfilled ticket plus the
    /// labels already received for the pending one. See the
    /// [module docs](self) for the replay contract.
    pub fn snapshot(&self) -> SessionSnapshot<M::Label> {
        let partial = match &self.pending {
            Some(p) => p
                .request
                .indices
                .iter()
                .zip(&p.got)
                .filter_map(|(&id, l)| l.as_ref().map(|l| (id, l.clone())))
                .collect(),
            None => Vec::new(),
        };
        SessionSnapshot {
            version: SNAPSHOT_VERSION,
            config_hash: self.config_hash,
            seed: self.seed,
            tickets: self.fulfilled.clone(),
            partial,
        }
    }

    /// Drive the session against its own hidden labels until exactly
    /// one more learning-curve point has been recorded — one
    /// fit/eval/score/select cycle — or the run completes. This is the
    /// incremental unit of the round-streamed grid executor: after `k`
    /// calls on a fresh session, [`Session::curve`] holds `k` points
    /// (the metric with `init + (k−1)·batch` labels) and the batch of
    /// round `k−1` is selected but not yet applied, byte-identical to
    /// the prefix of an uninterrupted [`Session::run_hidden`].
    ///
    /// Returns [`SessionStep::Done`] once the final fit has run (the
    /// result is then available); errors if the session was built
    /// without hidden labels.
    pub fn run_round_hidden(&mut self) -> Result<SessionStep, Error> {
        let target = self.curve.len() + 1;
        loop {
            match self.step()? {
                SessionStep::Done => return Ok(SessionStep::Done),
                SessionStep::AwaitingLabels => {
                    if self.curve.len() >= target {
                        return Ok(SessionStep::AwaitingLabels);
                    }
                    let response = self.answer_from_hidden().ok_or_else(|| {
                        Error::invariant(
                            "run_round_hidden needs a session built with pool() hidden labels",
                        )
                    })?;
                    self.submit(&response)?;
                }
            }
        }
    }

    /// Drive the session to completion against its own hidden labels —
    /// the simulated annotator as a one-call loop. Errors if the session
    /// was built without hidden labels.
    pub fn run_hidden(&mut self) -> Result<RunResult, Error> {
        loop {
            match self.step()? {
                SessionStep::Done => {
                    return Ok(self.result().expect("done session has a result").clone())
                }
                SessionStep::AwaitingLabels => {
                    let response = self.answer_from_hidden().ok_or_else(|| {
                        Error::invariant(
                            "run_hidden needs a session built with pool() hidden labels",
                        )
                    })?;
                    self.submit(&response)?;
                }
            }
        }
    }
}

/// Deterministic fingerprint of everything that shapes a session's
/// computation: the full strategy debug rendering (disambiguates
/// hyperparameter variants, as the bench journal does), the loop config
/// JSON, the LHS marker, and the seed.
pub(crate) fn session_config_hash(
    strategy: &Strategy,
    has_lhs: bool,
    config: &PoolConfig,
    seed: u64,
) -> u64 {
    let config_json = serde_json::to_string(config).unwrap_or_default();
    fingerprint(&[
        &format!("{strategy:?}"),
        &config_json,
        if has_lhs { "lhs" } else { "no-lhs" },
        &seed.to_string(),
    ])
}

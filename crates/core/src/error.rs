//! Error types for strategy evaluation.

use std::fmt;

/// Errors raised when a strategy asks for a quantity the underlying model
/// did not provide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// The base strategy needs a capability (`egl`, `bald`, `mnlp`, …) the
    /// model's [`crate::eval::SampleEval`] left unset.
    MissingCapability {
        /// Strategy name, e.g. `"EGL"`.
        strategy: &'static str,
        /// Missing field, e.g. `"egl"`.
        field: &'static str,
    },
    /// The margin strategy needs at least two classes of probabilities.
    NotEnoughClasses {
        /// Number of classes the eval actually carried.
        got: usize,
    },
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingCapability { strategy, field } => write!(
                f,
                "strategy {strategy} requires the model to provide `{field}` \
                 (enable it in EvalCaps / the model configuration)"
            ),
            Self::NotEnoughClasses { got } => {
                write!(
                    f,
                    "margin strategy needs ≥ 2 class probabilities, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for StrategyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = StrategyError::MissingCapability {
            strategy: "EGL",
            field: "egl",
        };
        let msg = e.to_string();
        assert!(msg.contains("EGL") && msg.contains("egl"));
    }

    #[test]
    fn error_trait_impl() {
        let e: Box<dyn std::error::Error> = Box::new(StrategyError::NotEnoughClasses { got: 1 });
        assert!(e.to_string().contains("got 1"));
    }
}

//! Structured errors for the active-learning session.
//!
//! [`Error`] pairs a machine-matchable [`ErrorKind`] with the tracing
//! span that was current when the error was raised, so failure records
//! in logs and the run journal can be correlated with the span tree the
//! subscriber saw. Construct with [`Error::new`] (captures the current
//! span automatically) and match on [`Error::kind`].

use std::fmt;

use histal_obs::trace::{current_span_id, SpanId};

/// What went wrong, independent of where.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// The base strategy needs a capability (`egl`, `bald`, `mnlp`, …) the
    /// model's [`crate::eval::SampleEval`] left unset.
    MissingCapability {
        /// Strategy name, e.g. `"EGL"`.
        strategy: &'static str,
        /// Missing field, e.g. `"egl"`.
        field: &'static str,
    },
    /// The margin strategy needs at least two classes of probabilities.
    NotEnoughClasses {
        /// Number of classes the eval actually carried.
        got: usize,
    },
    /// The run journal could not be written; the run aborts rather than
    /// continue with a checkpoint file that would lie on resume.
    Journal {
        /// Underlying I/O or serialization failure, rendered.
        message: String,
    },
    /// A name lookup in a registry (strategy, dataset, metric, …)
    /// failed. Carries the valid names so the rendered message tells the
    /// user what would have worked.
    UnknownName {
        /// What kind of name was being resolved, e.g. `"strategy"`.
        what: &'static str,
        /// The token that failed to resolve.
        token: String,
        /// The names the registry would have accepted.
        valid: Vec<String>,
    },
    /// An experiment spec was structurally invalid (bad parameter,
    /// inconsistent dataset kinds, unsupported combination, …).
    Spec {
        /// Human-readable description of the problem.
        message: String,
    },
    /// A harness invariant did not hold (e.g. a merged metrics registry
    /// missing a counter every run increments). Distinct from [`Self::Spec`]:
    /// the input was fine, the runtime state was not.
    Invariant {
        /// Human-readable description of the violated invariant.
        message: String,
    },
    /// A grid cell failed: the underlying failure plus the cell key
    /// (`{experiment}/{dataset}/{strategy}/r{repeat}`) so a failing grid
    /// reports *which* spec cell died.
    Cell {
        /// The journal-style cell key.
        cell: String,
        /// The underlying failure.
        source: Box<ErrorKind>,
    },
    /// A named entity (session, ticket, sample, …) does not exist.
    /// Service-facing: maps to HTTP 404.
    NotFound {
        /// What kind of entity was looked up, e.g. `"session"`.
        what: &'static str,
        /// The key that failed to resolve.
        key: String,
    },
    /// A request contradicts established state (a duplicate label with a
    /// different value, a submit against the wrong ticket, a snapshot
    /// restored onto a different configuration). Service-facing: maps to
    /// HTTP 409.
    Conflict {
        /// Human-readable description of the contradiction.
        message: String,
    },
    /// The system cannot take the request right now (shutting down,
    /// admission control); retrying later may succeed. Service-facing:
    /// maps to HTTP 503.
    Busy {
        /// Human-readable description; should say when to retry.
        message: String,
    },
}

impl ErrorKind {
    /// The single [`ErrorKind`] → HTTP status mapping. Service frontends
    /// (`histal-serve`) must derive every response status from this —
    /// never ad hoc per handler — so a given failure kind always renders
    /// as the same status. Kinds describing bad *input* map to 4xx,
    /// kinds describing internal failure map to 5xx, and [`Self::Cell`]
    /// defers to the failure it wraps.
    pub fn http_status(&self) -> u16 {
        match self {
            Self::NotFound { .. } | Self::UnknownName { .. } => 404,
            Self::Conflict { .. } => 409,
            Self::Busy { .. } => 503,
            Self::MissingCapability { .. } | Self::NotEnoughClasses { .. } | Self::Spec { .. } => {
                400
            }
            Self::Journal { .. } | Self::Invariant { .. } => 500,
            Self::Cell { source, .. } => source.http_status(),
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingCapability { strategy, field } => write!(
                f,
                "strategy {strategy} requires the model to provide `{field}` \
                 (enable it in EvalCaps / the model configuration)"
            ),
            Self::NotEnoughClasses { got } => {
                write!(
                    f,
                    "margin strategy needs ≥ 2 class probabilities, got {got}"
                )
            }
            Self::Journal { message } => write!(f, "run journal write failed: {message}"),
            Self::UnknownName { what, token, valid } => {
                write!(
                    f,
                    "unknown {what} `{token}` — valid {what}s: {}",
                    valid.join(", ")
                )
            }
            Self::Spec { message } => write!(f, "invalid experiment spec: {message}"),
            Self::Invariant { message } => write!(f, "harness invariant violated: {message}"),
            Self::Cell { cell, source } => write!(f, "cell {cell}: {source}"),
            Self::NotFound { what, key } => write!(f, "{what} `{key}` not found"),
            Self::Conflict { message } => write!(f, "conflict: {message}"),
            Self::Busy { message } => write!(f, "busy: {message}"),
        }
    }
}

/// A session error: an [`ErrorKind`] plus the tracing span (if any) that
/// was active when it was raised.
#[derive(Debug, Clone)]
pub struct Error {
    /// The failure, matchable.
    pub kind: ErrorKind,
    /// Id of the innermost span open on this thread at construction time
    /// (`None` when tracing was disabled or no span was open).
    pub span: Option<SpanId>,
}

impl Error {
    /// Wrap `kind`, capturing the current tracing span as context.
    pub fn new(kind: ErrorKind) -> Error {
        Error {
            kind,
            span: current_span_id(),
        }
    }

    /// Shorthand for a [`ErrorKind::MissingCapability`] error.
    pub fn missing_capability(strategy: &'static str, field: &'static str) -> Error {
        Error::new(ErrorKind::MissingCapability { strategy, field })
    }

    /// Shorthand for a [`ErrorKind::Journal`] error.
    pub fn journal(err: impl fmt::Display) -> Error {
        Error::new(ErrorKind::Journal {
            message: err.to_string(),
        })
    }

    /// Shorthand for an [`ErrorKind::UnknownName`] error.
    pub fn unknown_name(
        what: &'static str,
        token: impl Into<String>,
        valid: impl IntoIterator<Item = impl Into<String>>,
    ) -> Error {
        Error::new(ErrorKind::UnknownName {
            what,
            token: token.into(),
            valid: valid.into_iter().map(Into::into).collect(),
        })
    }

    /// Shorthand for an [`ErrorKind::Spec`] error.
    pub fn spec(message: impl fmt::Display) -> Error {
        Error::new(ErrorKind::Spec {
            message: message.to_string(),
        })
    }

    /// Shorthand for an [`ErrorKind::Invariant`] error.
    pub fn invariant(message: impl fmt::Display) -> Error {
        Error::new(ErrorKind::Invariant {
            message: message.to_string(),
        })
    }

    /// Shorthand for an [`ErrorKind::NotFound`] error.
    pub fn not_found(what: &'static str, key: impl Into<String>) -> Error {
        Error::new(ErrorKind::NotFound {
            what,
            key: key.into(),
        })
    }

    /// Shorthand for an [`ErrorKind::Conflict`] error.
    pub fn conflict(message: impl fmt::Display) -> Error {
        Error::new(ErrorKind::Conflict {
            message: message.to_string(),
        })
    }

    /// Shorthand for an [`ErrorKind::Busy`] error.
    pub fn busy(message: impl fmt::Display) -> Error {
        Error::new(ErrorKind::Busy {
            message: message.to_string(),
        })
    }

    /// Wrap this error with the grid-cell key it was raised in,
    /// preserving the original span context.
    pub fn in_cell(self, cell: impl Into<String>) -> Error {
        Error {
            kind: ErrorKind::Cell {
                cell: cell.into(),
                source: Box::new(self.kind),
            },
            span: self.span.or_else(histal_obs::trace::current_span_id),
        }
    }
}

impl From<ErrorKind> for Error {
    fn from(kind: ErrorKind) -> Error {
        Error::new(kind)
    }
}

/// Two errors are equal when their kinds are — the span is diagnostic
/// context, not identity (the same failure in two runs carries two
/// different span ids).
impl PartialEq for Error {
    fn eq(&self, other: &Error) -> bool {
        self.kind == other.kind
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.kind.fmt(f)?;
        if let Some(span) = self.span {
            write!(f, " (in span #{})", span.0)?;
        }
        Ok(())
    }
}

impl std::error::Error for Error {}

/// Pre-0.2 name for [`Error`], before span context was attached. The old
/// enum variants live on [`ErrorKind`]; match `err.kind` instead of the
/// error itself.
#[deprecated(
    since = "0.1.0",
    note = "use `histal_core::error::Error` and match on `.kind`"
)]
pub type StrategyError = Error;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = Error::missing_capability("EGL", "egl");
        let msg = e.to_string();
        assert!(msg.contains("EGL") && msg.contains("egl"));
    }

    #[test]
    fn error_trait_impl() {
        let e: Box<dyn std::error::Error> =
            Box::new(Error::new(ErrorKind::NotEnoughClasses { got: 1 }));
        assert!(e.to_string().contains("got 1"));
    }

    #[test]
    fn equality_ignores_span_context() {
        let a = Error {
            kind: ErrorKind::NotEnoughClasses { got: 1 },
            span: None,
        };
        let b = Error {
            kind: ErrorKind::NotEnoughClasses { got: 1 },
            span: Some(SpanId(7)),
        };
        assert_eq!(a, b);
        assert_ne!(
            a,
            Error {
                kind: ErrorKind::NotEnoughClasses { got: 2 },
                span: None
            }
        );
    }

    #[test]
    fn captures_enclosing_span() {
        use histal_obs::trace::{subscriber_scope, CollectingSubscriber, Level};
        use std::sync::Arc;
        let sub = Arc::new(CollectingSubscriber::new());
        let _guard = subscriber_scope(sub);
        let _span = histal_obs::span!(Level::Info, "error.ctx");
        let e = Error::missing_capability("BALD", "bald");
        assert_eq!(e.span, _span.id());
        assert!(e.to_string().contains("in span #"));
    }
}

//! Property tests for the deterministic parallel reduction primitives:
//! the parallel chunk-accumulate-then-combine must equal the serial
//! reference (same chunk association) to 0 ULP, for any chunk size.

use histal_models::parallel::{chunked_grads, chunked_grads_serial, derive_seed, map_items};
use proptest::prelude::*;

proptest! {
    #[test]
    fn chunked_parallel_matches_serial_to_zero_ulp(
        vals in prop::collection::vec(-1e12f64..1e12, 0..64),
        chunk in 1usize..9,
        dense_dim in 1usize..5,
    ) {
        let grad = |i: usize, acc: &mut [f64]| {
            for (k, a) in acc.iter_mut().enumerate() {
                *a += vals[i] * (k as f64 + 0.5);
            }
            vals[i] * 2.0
        };
        let (par_items, par_dense) = chunked_grads(vals.len(), chunk, dense_dim, grad);
        let (ser_items, ser_dense) = chunked_grads_serial(vals.len(), chunk, dense_dim, grad);
        prop_assert_eq!(&par_items, &ser_items);
        prop_assert_eq!(par_dense.len(), dense_dim);
        for (p, s) in par_dense.iter().zip(&ser_dense) {
            prop_assert_eq!(p.to_bits(), s.to_bits(), "parallel {} vs serial {}", p, s);
        }
    }

    #[test]
    fn chunk_size_does_not_reorder_items(
        n in 0usize..50,
        chunk_a in 1usize..9,
        chunk_b in 1usize..9,
    ) {
        // Per-item results are ordered by item index whatever the
        // chunking; only the dense float association may differ.
        let (a, _) = chunked_grads(n, chunk_a, 1, |i, acc| { acc[0] += 1.0; i });
        let (b, _) = chunked_grads(n, chunk_b, 1, |i, acc| { acc[0] += 1.0; i });
        prop_assert_eq!(a, b);
    }

    #[test]
    fn map_items_is_index_ordered(n in 0usize..100) {
        let out = map_items(n, |i| i * 7 + 1);
        prop_assert_eq!(out, (0..n).map(|i| i * 7 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn derive_seed_is_pure_and_spreads(base in 0u64..u64::MAX, i in 0u64..1024) {
        prop_assert_eq!(derive_seed(base, i), derive_seed(base, i));
        prop_assert_ne!(derive_seed(base, i), derive_seed(base, i.wrapping_add(1)));
    }
}

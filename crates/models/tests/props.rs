//! Property-based tests for the model substrates.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_core::eval::EvalCaps;
use histal_core::model::Model;
use histal_core::tags::TagScheme;
use histal_models::{
    CrfConfig, CrfTagger, Document, Sentence, TextClassifier, TextClassifierConfig,
};
use histal_text::FeatureHasher;

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec("[a-e]{1,3}", 1..8), 1..12)
}

fn featurize(tokens: &[Vec<String>]) -> Vec<Document> {
    let hasher = FeatureHasher::new(1 << 10);
    tokens
        .iter()
        .map(|t| Document::from_tokens(t, &hasher))
        .collect()
}

fn classifier() -> TextClassifier {
    TextClassifier::new(TextClassifierConfig {
        n_classes: 2,
        n_features: 1 << 10,
        epochs: 2,
        mc_passes: 4,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Posteriors live on the simplex before and after training.
    #[test]
    fn classifier_posterior_simplex(tokens in docs_strategy()) {
        let docs = featurize(&tokens);
        let labels: Vec<usize> = (0..docs.len()).map(|i| i % 2).collect();
        let mut m = classifier();
        let s: Vec<&Document> = docs.iter().collect();
        let l: Vec<&usize> = labels.iter().collect();
        m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(1));
        for d in &docs {
            let p = m.predict_proba(d);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// EGL and EGL-word are non-negative and finite; BALD ≥ 0.
    #[test]
    fn classifier_scores_sane(tokens in docs_strategy()) {
        let docs = featurize(&tokens);
        let labels: Vec<usize> = (0..docs.len()).map(|i| i % 2).collect();
        let mut m = classifier();
        let s: Vec<&Document> = docs.iter().collect();
        let l: Vec<&usize> = labels.iter().collect();
        m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(2));
        let caps = EvalCaps { egl: true, egl_word: true, bald: true, ..Default::default() };
        for (i, d) in docs.iter().enumerate() {
            let e = m.eval_sample(d, &caps, i as u64);
            prop_assert!(e.egl.unwrap() >= 0.0 && e.egl.unwrap().is_finite());
            prop_assert!(e.egl_word.unwrap() >= 0.0);
            prop_assert!(e.bald.unwrap() >= 0.0);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&e.least_confidence));
        }
    }

    /// CRF: marginals are per-token distributions and the NLL of any
    /// labeling is non-negative (log Z ≥ any path score).
    #[test]
    fn crf_marginals_and_nll(tokens in prop::collection::vec("[a-d]{1,3}", 1..6)) {
        let scheme = TagScheme::new(["X"]);
        let n_labels = scheme.n_labels() as u16;
        let mut m = CrfTagger::new(CrfConfig {
            n_features: 1 << 8,
            epochs: 1,
            scheme,
            ..Default::default()
        });
        let hasher = FeatureHasher::new(1 << 8);
        let sent = Sentence::featurize(&tokens, &hasher);
        // Train on an arbitrary labeling so weights are non-trivial.
        let tags: Vec<u16> = (0..tokens.len()).map(|i| (i as u16) % n_labels).collect();
        let s = [&sent];
        let t_owned = [tags.clone()];
        let t: Vec<&Vec<u16>> = t_owned.iter().collect();
        m.fit(&s, &t, &mut ChaCha8Rng::seed_from_u64(3));

        for row in m.marginals(&sent) {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            prop_assert!(row.iter().all(|&p| p >= -1e-12));
        }
        prop_assert!(m.nll(&sent, &tags) >= -1e-9);
        // Viterbi path has NLL no larger than any other labeling's.
        let (best, _) = m.viterbi(&sent);
        prop_assert!(m.nll(&sent, &best) <= m.nll(&sent, &tags) + 1e-9);
    }

    /// Documents are deterministic functions of their tokens.
    #[test]
    fn document_featurization_deterministic(tokens in prop::collection::vec("[a-z]{1,5}", 0..10)) {
        let hasher = FeatureHasher::new(1 << 10);
        let a = Document::from_tokens(&tokens, &hasher);
        let b = Document::from_tokens(&tokens, &hasher);
        prop_assert_eq!(a.features, b.features);
        prop_assert_eq!(a.max_word_weight, b.max_word_weight);
    }
}

//! Property tests for the kernel layer (DESIGN.md §5.7).
//!
//! Two contracts are pinned here:
//!
//! 1. the lane kernels in `histal_models::kernels` are **0-ULP
//!    identical** to their scalar references under every dispatch mode
//!    (all comparisons are on `f64::to_bits`, not approximate);
//! 2. the beam-pruned scoring pass stays inside its documented error
//!    envelope: `logZ` is underestimated by at most
//!    `B = −(T−1)·ln(1 − L·e^{−δ})`, least-confidence moves by at most
//!    `e^B − 1`, and a wide-open beam (`δ` huge) reproduces the exact
//!    path bit-for-bit.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_core::eval::EvalCaps;
use histal_core::model::Model;
use histal_core::tags::TagScheme;
use histal_models::kernels::{self, KernelMode};
use histal_models::{CrfConfig, CrfTagger, Sentence};
use histal_text::FeatureHasher;

/// The kernel mode is process-global; every test that flips it (or that
/// asserts bit-identity across calls and so needs it stable) holds this
/// lock so the parallel test threads can't race each other.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock_mode() -> MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` under both dispatch modes, restoring the lane default after.
fn under_both_modes(mut f: impl FnMut(KernelMode)) {
    for m in [KernelMode::Scalar, KernelMode::Lanes] {
        kernels::set_mode(m);
        f(m);
    }
    kernels::set_mode(KernelMode::Lanes);
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// Contract 1: lane kernels == scalar references, to the bit.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// add2 / add3 / shift_add3_sub match the scalar references exactly
    /// at every length (including the ragged tails < 4 lanes).
    #[test]
    fn elementwise_kernels_bit_identical(
        a in prop::collection::vec(-1e3f64..1e3, 0..41),
        s in -20f64..20.0,
        z in -20f64..20.0,
    ) {
        let _g = lock_mode();
        let n = a.len();
        let b: Vec<f64> = a.iter().map(|x| x * 0.37 - 1.25).collect();
        let c: Vec<f64> = a.iter().map(|x| 2.5 - x * 1.13).collect();

        let mut w2 = vec![0.0; n];
        let mut w3 = vec![0.0; n];
        let mut ws = vec![0.0; n];
        kernels::scalar::add2(&mut w2, &a, &b);
        kernels::scalar::add3(&mut w3, &a, &b, &c);
        kernels::scalar::shift_add3_sub(&mut ws, s, &a, &b, &c, z);

        under_both_modes(|_| {
            let mut g2 = vec![0.0; n];
            let mut g3 = vec![0.0; n];
            let mut gs = vec![0.0; n];
            kernels::add2(&mut g2, &a, &b);
            kernels::add3(&mut g3, &a, &b, &c);
            kernels::shift_add3_sub(&mut gs, s, &a, &b, &c, z);
            assert_eq!(bits(&g2), bits(&w2));
            assert_eq!(bits(&g3), bits(&w3));
            assert_eq!(bits(&gs), bits(&ws));
        });
    }

    /// axpy and the SGD row update (both in-place) match exactly,
    /// including the small-gradient skip semantics: with `eps = 0` no
    /// cell is ever skipped, with `eps > 0` sub-threshold cells keep
    /// their exact old bits (no L2 decay applied).
    #[test]
    fn accumulate_kernels_bit_identical(
        acc0 in prop::collection::vec(-10f64..10.0, 0..41),
        v in -5f64..5.0,
        lr in 1e-4f64..0.5,
        l2 in 0f64..1e-3,
        eps_sel in 0u8..2,
    ) {
        let _g = lock_mode();
        let row: Vec<f64> = acc0.iter().map(|x| x * 0.71 + 0.2).collect();
        // Gradient rows mixing sub- and super-threshold magnitudes so
        // the eps skip actually fires.
        let grad: Vec<f64> = acc0
            .iter()
            .enumerate()
            .map(|(i, x)| if i % 3 == 0 { x * 1e-14 } else { *x })
            .collect();
        let eps = if eps_sel == 1 { 1e-12 } else { 0.0 };

        let mut want_axpy = acc0.clone();
        kernels::scalar::axpy(&mut want_axpy, &row, v);
        let mut want_sgd = acc0.clone();
        kernels::scalar::sgd_row_update(&mut want_sgd, &grad, v, lr, l2, eps);

        under_both_modes(|_| {
            let mut got = acc0.clone();
            kernels::axpy(&mut got, &row, v);
            assert_eq!(bits(&got), bits(&want_axpy));
            let mut got = acc0.clone();
            kernels::sgd_row_update(&mut got, &grad, v, lr, l2, eps);
            assert_eq!(bits(&got), bits(&want_sgd));
        });
    }

    /// max_index matches the scalar earliest-index tie-break exactly.
    /// Values are drawn from a small discrete set so duplicates (ties)
    /// are common rather than measure-zero.
    #[test]
    fn max_index_matches_scalar(raw in prop::collection::vec(-4i32..5, 0..41)) {
        let _g = lock_mode();
        let xs: Vec<f64> = raw.iter().map(|&i| f64::from(i) * 0.5).collect();
        let want = kernels::scalar::max_index(&xs);
        under_both_modes(|_| {
            let got = kernels::max_index(&xs);
            assert_eq!(got.0.to_bits(), want.0.to_bits());
            assert_eq!(got.1, want.1);
        });
    }
}

// ---------------------------------------------------------------------------
// Contract 2: the beam-pruned forward pass vs the exact oracle.
// ---------------------------------------------------------------------------

fn sents_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec("[a-d]{1,3}", 1..9), 2..6)
}

/// Fit two CRFs with identical seeds and configs differing only in
/// `score_beam` (which `fit` never reads, so weights come out
/// identical), over the given sentences. Returns `(exact, beamed,
/// sentences, n_labels)`.
fn fit_pair(tokens: &[Vec<String>], delta: f64) -> (CrfTagger, CrfTagger, Vec<Sentence>, usize) {
    let hasher = FeatureHasher::new(1 << 8);
    let sents: Vec<Sentence> = tokens
        .iter()
        .map(|t| Sentence::featurize(t, &hasher))
        .collect();
    let mk = |beam: Option<f64>| {
        CrfTagger::new(CrfConfig {
            n_features: 1 << 8,
            epochs: 2,
            scheme: TagScheme::new(["X"]),
            score_beam: beam,
            ..Default::default()
        })
    };
    let mut exact = mk(None);
    let mut beamed = mk(Some(delta));
    let n_labels = TagScheme::new(["X"]).n_labels();
    let tag_rows: Vec<Vec<u16>> = tokens
        .iter()
        .map(|t| (0..t.len()).map(|i| (i % n_labels) as u16).collect())
        .collect();
    let s: Vec<&Sentence> = sents.iter().collect();
    let t: Vec<&Vec<u16>> = tag_rows.iter().collect();
    exact.fit(&s, &t, &mut ChaCha8Rng::seed_from_u64(7));
    beamed.fit(&s, &t, &mut ChaCha8Rng::seed_from_u64(7));
    (exact, beamed, sents, n_labels)
}

/// The documented per-sentence log-partition slack
/// `B = −(T−1)·ln(1 − L·e^{−δ})` (0 for single-token sentences).
fn logz_bound(t_len: usize, n_labels: usize, delta: f64) -> f64 {
    let mass = n_labels as f64 * (-delta).exp();
    assert!(mass < 1.0, "bound is vacuous for this (L, δ)");
    -((t_len as f64 - 1.0).max(0.0)) * (1.0 - mass).ln()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A wide-open beam keeps every state active, so the pruned pass is
    /// the exact pass: logZ, least-confidence, and entropy are all
    /// bit-identical. (This is the δ → ∞ limit of the error bound.)
    #[test]
    fn huge_beam_is_bit_identical_to_exact(tokens in sents_strategy()) {
        let _g = lock_mode();
        let (exact, beamed, sents, _) = fit_pair(&tokens, 1e300);
        let caps = EvalCaps { entropy: true, ..Default::default() };
        for (i, s) in sents.iter().enumerate() {
            prop_assert_eq!(
                exact.log_partition(s).to_bits(),
                beamed.log_partition(s).to_bits()
            );
            let a = exact.eval_sample(s, &caps, i as u64);
            let b = beamed.eval_sample(s, &caps, i as u64);
            prop_assert_eq!(a.least_confidence.to_bits(), b.least_confidence.to_bits());
            prop_assert_eq!(a.entropy.to_bits(), b.entropy.to_bits());
        }
    }

    /// Pruning only removes non-negative terms from each logsumexp, so
    /// the beamed logZ never exceeds the exact one — and it stays within
    /// the documented bound `B` of it.
    #[test]
    fn beam_logz_within_documented_bound(tokens in sents_strategy()) {
        let _g = lock_mode();
        let delta = 8.0;
        let (exact, beamed, sents, n_labels) = fit_pair(&tokens, delta);
        for s in &sents {
            let ze = exact.log_partition(s);
            let zb = beamed.log_partition(s);
            let bound = logz_bound(s.len(), n_labels, delta);
            prop_assert!(zb <= ze + 1e-9, "beam must underestimate: {zb} > {ze}");
            prop_assert!(
                ze - zb <= bound + 1e-9,
                "logZ gap {} exceeds bound {bound}",
                ze - zb
            );
        }
    }

    /// Least-confidence error is bounded by `e^B − 1` (the Viterbi path
    /// score is exact in both, only logZ moves), and pairs whose exact
    /// LC gap exceeds the sum of their error radii keep their relative
    /// order under the beam — the rank-stability property selection
    /// actually depends on.
    #[test]
    fn beam_lc_bounded_and_rank_stable(tokens in sents_strategy()) {
        let _g = lock_mode();
        let delta = 8.0;
        let (exact, beamed, sents, n_labels) = fit_pair(&tokens, delta);
        let caps = EvalCaps::default();
        let mut rows = Vec::new();
        for (i, s) in sents.iter().enumerate() {
            let lc_e = exact.eval_sample(s, &caps, i as u64).least_confidence;
            let lc_b = beamed.eval_sample(s, &caps, i as u64).least_confidence;
            let err = logz_bound(s.len(), n_labels, delta).exp() - 1.0;
            prop_assert!(
                (lc_b - lc_e).abs() <= err + 1e-9,
                "LC moved by {} > radius {err}",
                (lc_b - lc_e).abs()
            );
            rows.push((lc_e, lc_b, err));
        }
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                let (ei, bi, ri) = rows[i];
                let (ej, bj, rj) = rows[j];
                if ei + ri < ej - rj {
                    prop_assert!(
                        bi < bj,
                        "separated pair reordered: exact {ei} < {ej} but beamed {bi} >= {bj}"
                    );
                }
            }
        }
    }
}

//! Property-based tests for the ranking model and Naive Bayes.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use histal_core::eval::EvalCaps;
use histal_core::model::Model;
use histal_models::{Document, NaiveBayes, NaiveBayesConfig, RankingModel, RankingModelConfig};
use histal_text::FeatureHasher;

fn query_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, 12), 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The top-document distribution is a simplex for any query, trained
    /// or not.
    #[test]
    fn ranking_distribution_simplex(query in query_strategy()) {
        let untrained = RankingModel::new(RankingModelConfig::default());
        let p = untrained.top_doc_distribution(&query);
        prop_assert_eq!(p.len(), query.len());
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    /// Ranking metric (mean NDCG) is bounded in [0, 1].
    #[test]
    fn ranking_metric_bounded(query in query_strategy()) {
        let m = RankingModel::new(RankingModelConfig::default());
        let rels: Vec<f64> = (0..query.len()).map(|i| (i % 3) as f64).collect();
        let s = [&query];
        let l_owned = [rels];
        let l: Vec<&Vec<f64>> = l_owned.iter().collect();
        let v = m.metric(&s, &l);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "ndcg {v}");
    }

    /// NB posteriors stay on the simplex for arbitrary token bags, before
    /// and after fitting on arbitrary labeled data.
    #[test]
    fn nb_posterior_simplex(
        docs in prop::collection::vec(prop::collection::vec("[a-f]{1,3}", 1..6), 1..10),
    ) {
        let hasher = FeatureHasher::new(1 << 10);
        let featurized: Vec<Document> =
            docs.iter().map(|t| Document::from_tokens(t, &hasher)).collect();
        let labels: Vec<usize> = (0..featurized.len()).map(|i| i % 2).collect();
        let mut m = NaiveBayes::new(NaiveBayesConfig {
            n_features: 1 << 10,
            ..Default::default()
        });
        let s: Vec<&Document> = featurized.iter().collect();
        let l: Vec<&usize> = labels.iter().collect();
        m.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(1));
        for d in &featurized {
            let e = m.eval_sample(d, &EvalCaps::default(), 0);
            prop_assert!((e.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&e.least_confidence));
        }
    }
}

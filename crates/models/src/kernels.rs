//! Lane-unrolled numeric kernels for the lattice and hashed-feature hot
//! paths (DESIGN.md §5.7).
//!
//! Every kernel here is **bit-identical** to its scalar reference in
//! [`scalar`]: the lane forms only regroup *which distinct output cells*
//! are computed together — the sequence of floating-point operations
//! that produces each individual cell is unchanged (same operands, same
//! association, no FMA contraction). Order-sensitive reductions
//! (`logsumexp`'s sum of exponentials) are deliberately **not**
//! vectorized; the only reductions here are `max`/argmax, which are
//! exact under any grouping for non-NaN inputs (the argmax combine rule
//! preserves the scalar earliest-index tie-break).
//!
//! Dispatch has three tiers, selected once per process:
//!
//! * `scalar` — the plain reference loops (also reachable per-call via
//!   [`set_mode`] or `HISTAL_KERNELS=scalar`, which the CI equivalence
//!   smoke uses to diff whole-harness outputs against the lane path);
//! * `lanes` — portable 4-lane unrolled blocks the autovectorizer maps
//!   onto whatever 128-bit SIMD the baseline target has;
//! * on x86_64, the lane bodies are additionally compiled into AVX2
//!   clones picked at runtime via `is_x86_feature_detected!` (256-bit
//!   vectors, still no FMA — `avx2` does not imply the `fma` feature,
//!   so LLVM cannot contract the mul/add pairs).

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the process uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Plain scalar reference loops.
    Scalar,
    /// 4-lane unrolled blocks (plus runtime AVX2 clones on x86_64).
    Lanes,
}

const MODE_UNSET: u8 = 0;
const MODE_SCALAR: u8 = 1;
const MODE_LANES: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// The active kernel mode. First call resolves `HISTAL_KERNELS`
/// (`scalar` forces the reference path; anything else selects lanes).
#[inline]
pub fn mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_SCALAR => KernelMode::Scalar,
        MODE_LANES => KernelMode::Lanes,
        _ => init_mode(),
    }
}

#[cold]
fn init_mode() -> KernelMode {
    let m = match std::env::var("HISTAL_KERNELS").as_deref() {
        Ok("scalar") => KernelMode::Scalar,
        _ => KernelMode::Lanes,
    };
    set_mode(m);
    m
}

/// Force a kernel mode (tests, benches, and the `bench --check`
/// equivalence smoke switch modes within one process).
pub fn set_mode(m: KernelMode) {
    let v = match m {
        KernelMode::Scalar => MODE_SCALAR,
        KernelMode::Lanes => MODE_LANES,
    };
    MODE.store(v, Ordering::Relaxed);
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Scalar reference implementations. These are the semantics; the lane
/// forms above them must match to 0 ULP (pinned by the proptests in
/// `tests/kernel_props.rs`).
pub mod scalar {
    /// `out[i] = a[i] + b[i]`.
    pub fn add2(out: &mut [f64], a: &[f64], b: &[f64]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x + y;
        }
    }

    /// `out[i] = (a[i] + b[i]) + c[i]` — association fixed left-to-right.
    pub fn add3(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
        for (((o, &x), &y), &z) in out.iter_mut().zip(a).zip(b).zip(c) {
            *o = (x + y) + z;
        }
    }

    /// `out[i] = (((s + a[i]) + b[i]) + c[i]) - z` — the ξ-row shape of
    /// the CRF transition gradient.
    pub fn shift_add3_sub(out: &mut [f64], s: f64, a: &[f64], b: &[f64], c: &[f64], z: f64) {
        for (((o, &x), &y), &w) in out.iter_mut().zip(a).zip(b).zip(c) {
            *o = (((s + x) + y) + w) - z;
        }
    }

    /// `acc[i] += row[i] * v` (no FMA: explicit mul then add).
    pub fn axpy(acc: &mut [f64], row: &[f64], v: f64) {
        for (o, &x) in acc.iter_mut().zip(row) {
            *o += x * v;
        }
    }

    /// Earliest maximum: `(value, index)` of the first occurrence of the
    /// largest element; `(-inf, 0)` for an empty slice.
    pub fn max_index(xs: &[f64]) -> (f64, usize) {
        let mut best = f64::NEG_INFINITY;
        let mut arg = 0usize;
        for (i, &x) in xs.iter().enumerate() {
            if x > best {
                best = x;
                arg = i;
            }
        }
        (best, arg)
    }

    /// Elementwise SGD row update with the CRF's small-gradient skip:
    /// cells whose gradient factor is below `eps` are left untouched
    /// (no L2 decay), matching the historical per-label `continue`.
    pub fn sgd_row_update(w: &mut [f64], g: &[f64], v: f64, lr: f64, l2: f64, eps: f64) {
        for (wy, &gy) in w.iter_mut().zip(g) {
            if gy.abs() < eps {
                continue;
            }
            *wy -= lr * (gy * v + l2 * *wy);
        }
    }
}

// ---------------------------------------------------------------------------
// Lane bodies. `#[inline(always)]` lets the AVX2 clones recompile the
// same source with 256-bit codegen.
// ---------------------------------------------------------------------------

#[inline(always)]
fn add2_body(out: &mut [f64], a: &[f64], b: &[f64]) {
    let n = out.len().min(a.len()).min(b.len());
    let (out, a, b) = (&mut out[..n], &a[..n], &b[..n]);
    let mut i = 0;
    while i + 4 <= n {
        out[i] = a[i] + b[i];
        out[i + 1] = a[i + 1] + b[i + 1];
        out[i + 2] = a[i + 2] + b[i + 2];
        out[i + 3] = a[i + 3] + b[i + 3];
        i += 4;
    }
    while i < n {
        out[i] = a[i] + b[i];
        i += 1;
    }
}

#[inline(always)]
fn add3_body(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
    let n = out.len().min(a.len()).min(b.len()).min(c.len());
    let (out, a, b, c) = (&mut out[..n], &a[..n], &b[..n], &c[..n]);
    let mut i = 0;
    while i + 4 <= n {
        out[i] = (a[i] + b[i]) + c[i];
        out[i + 1] = (a[i + 1] + b[i + 1]) + c[i + 1];
        out[i + 2] = (a[i + 2] + b[i + 2]) + c[i + 2];
        out[i + 3] = (a[i + 3] + b[i + 3]) + c[i + 3];
        i += 4;
    }
    while i < n {
        out[i] = (a[i] + b[i]) + c[i];
        i += 1;
    }
}

#[inline(always)]
fn shift_add3_sub_body(out: &mut [f64], s: f64, a: &[f64], b: &[f64], c: &[f64], z: f64) {
    let n = out.len().min(a.len()).min(b.len()).min(c.len());
    let (out, a, b, c) = (&mut out[..n], &a[..n], &b[..n], &c[..n]);
    let mut i = 0;
    while i + 4 <= n {
        out[i] = (((s + a[i]) + b[i]) + c[i]) - z;
        out[i + 1] = (((s + a[i + 1]) + b[i + 1]) + c[i + 1]) - z;
        out[i + 2] = (((s + a[i + 2]) + b[i + 2]) + c[i + 2]) - z;
        out[i + 3] = (((s + a[i + 3]) + b[i + 3]) + c[i + 3]) - z;
        i += 4;
    }
    while i < n {
        out[i] = (((s + a[i]) + b[i]) + c[i]) - z;
        i += 1;
    }
}

#[inline(always)]
fn axpy_body(acc: &mut [f64], row: &[f64], v: f64) {
    let n = acc.len().min(row.len());
    let (acc, row) = (&mut acc[..n], &row[..n]);
    let mut i = 0;
    while i + 4 <= n {
        acc[i] += row[i] * v;
        acc[i + 1] += row[i + 1] * v;
        acc[i + 2] += row[i + 2] * v;
        acc[i + 3] += row[i + 3] * v;
        i += 4;
    }
    while i < n {
        acc[i] += row[i] * v;
        i += 1;
    }
}

#[inline(always)]
fn max_index_body(xs: &[f64]) -> (f64, usize) {
    let n = xs.len();
    if n < 8 {
        return scalar::max_index(xs);
    }
    // Four independent accumulator lanes; each keeps the earliest max of
    // its residue class i ≡ m (mod 4). The classes partition the range,
    // so combining lane winners with the (greater) OR (equal AND
    // earlier-index) rule recovers exactly the scalar earliest-max.
    let mut vals = [xs[0], xs[1], xs[2], xs[3]];
    let mut args = [0usize, 1, 2, 3];
    let mut i = 4;
    while i + 4 <= n {
        for m in 0..4 {
            if xs[i + m] > vals[m] {
                vals[m] = xs[i + m];
                args[m] = i + m;
            }
        }
        i += 4;
    }
    let (mut best, mut arg) = (vals[0], args[0]);
    for m in 1..4 {
        if vals[m] > best || (vals[m] == best && args[m] < arg) {
            best = vals[m];
            arg = args[m];
        }
    }
    while i < n {
        if xs[i] > best {
            best = xs[i];
            arg = i;
        }
        i += 1;
    }
    (best, arg)
}

#[inline(always)]
fn sgd_row_update_body(w: &mut [f64], g: &[f64], v: f64, lr: f64, l2: f64, eps: f64) {
    let n = w.len().min(g.len());
    let (w, g) = (&mut w[..n], &g[..n]);
    // Compute the update unconditionally (vectorizable), apply it under
    // the skip mask — bitwise the same as the scalar `continue`, since a
    // skipped cell's value is simply not stored.
    for (wy, &gy) in w.iter_mut().zip(g) {
        let updated = *wy - lr * (gy * v + l2 * *wy);
        if gy.abs() >= eps {
            *wy = updated;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx {
    #[target_feature(enable = "avx2")]
    pub unsafe fn add2(out: &mut [f64], a: &[f64], b: &[f64]) {
        super::add2_body(out, a, b)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn add3(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
        super::add3_body(out, a, b, c)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn shift_add3_sub(out: &mut [f64], s: f64, a: &[f64], b: &[f64], c: &[f64], z: f64) {
        super::shift_add3_sub_body(out, s, a, b, c, z)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(acc: &mut [f64], row: &[f64], v: f64) {
        super::axpy_body(acc, row, v)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn sgd_row_update(w: &mut [f64], g: &[f64], v: f64, lr: f64, l2: f64, eps: f64) {
        super::sgd_row_update_body(w, g, v, lr, l2, eps)
    }
}

macro_rules! dispatch {
    ($scalar:expr, $avx:expr, $lanes:expr) => {{
        if mode() == KernelMode::Scalar {
            return $scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if avx2() {
            // SAFETY: gated on runtime AVX2 detection.
            return unsafe { $avx };
        }
        #[allow(unreachable_code)]
        $lanes
    }};
}

/// `out[i] = a[i] + b[i]` over the common prefix of the slices.
#[inline]
pub fn add2(out: &mut [f64], a: &[f64], b: &[f64]) {
    dispatch!(
        scalar::add2(out, a, b),
        avx::add2(out, a, b),
        add2_body(out, a, b)
    )
}

/// `out[i] = (a[i] + b[i]) + c[i]`, association fixed.
#[inline]
pub fn add3(out: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
    dispatch!(
        scalar::add3(out, a, b, c),
        avx::add3(out, a, b, c),
        add3_body(out, a, b, c)
    )
}

/// `out[i] = (((s + a[i]) + b[i]) + c[i]) - z`, association fixed.
#[inline]
pub fn shift_add3_sub(out: &mut [f64], s: f64, a: &[f64], b: &[f64], c: &[f64], z: f64) {
    dispatch!(
        scalar::shift_add3_sub(out, s, a, b, c, z),
        avx::shift_add3_sub(out, s, a, b, c, z),
        shift_add3_sub_body(out, s, a, b, c, z)
    )
}

/// `acc[i] += row[i] * v` — the hashed sparse-dense building block
/// shared by CRF emission fills and logreg logits/gradients.
#[inline]
pub fn axpy(acc: &mut [f64], row: &[f64], v: f64) {
    dispatch!(
        scalar::axpy(acc, row, v),
        avx::axpy(acc, row, v),
        axpy_body(acc, row, v)
    )
}

/// Earliest maximum `(value, index)`; `(-inf, 0)` for an empty slice.
/// Exact: f64 max is associative/commutative for non-NaN inputs, and the
/// lane combine preserves the scalar first-occurrence tie-break.
#[inline]
pub fn max_index(xs: &[f64]) -> (f64, usize) {
    if mode() == KernelMode::Scalar {
        return scalar::max_index(xs);
    }
    max_index_body(xs)
}

/// SGD row update `w[y] -= lr * (g[y]*v + l2*w[y])`, skipping cells with
/// `|g[y]| < eps` (no L2 decay on skipped cells).
#[inline]
pub fn sgd_row_update(w: &mut [f64], g: &[f64], v: f64, lr: f64, l2: f64, eps: f64) {
    dispatch!(
        scalar::sgd_row_update(w, g, v, lr, l2, eps),
        avx::sgd_row_update(w, g, v, lr, l2, eps),
        sgd_row_update_body(w, g, v, lr, l2, eps)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic mixed-magnitude values; no RNG dependency needed.
        (0..n)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) % 1000) as f64;
                (x - 500.0) * 10f64.powi((i % 7) as i32 - 3)
            })
            .collect()
    }

    #[test]
    fn lane_kernels_match_scalar_bitwise() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 64, 65] {
            let a = vals(n, 1);
            let b = vals(n, 2);
            let c = vals(n, 3);
            let mut o1 = vec![0.0; n];
            let mut o2 = vec![0.0; n];

            scalar::add2(&mut o1, &a, &b);
            set_mode(KernelMode::Lanes);
            add2(&mut o2, &a, &b);
            assert_eq!(bits(&o1), bits(&o2), "add2 n={n}");

            scalar::add3(&mut o1, &a, &b, &c);
            add3(&mut o2, &a, &b, &c);
            assert_eq!(bits(&o1), bits(&o2), "add3 n={n}");

            scalar::shift_add3_sub(&mut o1, 0.37, &a, &b, &c, 1.91);
            shift_add3_sub(&mut o2, 0.37, &a, &b, &c, 1.91);
            assert_eq!(bits(&o1), bits(&o2), "shift_add3_sub n={n}");

            let mut a1 = vals(n, 4);
            let mut a2 = a1.clone();
            scalar::axpy(&mut a1, &b, 0.731);
            axpy(&mut a2, &b, 0.731);
            assert_eq!(bits(&a1), bits(&a2), "axpy n={n}");

            assert_eq!(scalar::max_index(&a), max_index(&a), "max_index n={n}");

            let g = vals(n, 5);
            let mut w1 = vals(n, 6);
            let mut w2 = w1.clone();
            scalar::sgd_row_update(&mut w1, &g, 0.5, 0.3, 1e-6, 1e-12);
            sgd_row_update(&mut w2, &g, 0.5, 0.3, 1e-6, 1e-12);
            assert_eq!(bits(&w1), bits(&w2), "sgd_row_update n={n}");
        }
    }

    #[test]
    fn max_index_earliest_tie_break() {
        // Duplicated maxima across lanes: must return the first.
        let xs = [1.0, 5.0, 2.0, 5.0, 5.0, 0.0, 5.0, 1.0, 5.0];
        assert_eq!(scalar::max_index(&xs), (5.0, 1));
        set_mode(KernelMode::Lanes);
        assert_eq!(max_index(&xs), (5.0, 1));
    }

    #[test]
    fn sgd_skip_leaves_cell_untouched() {
        let mut w = vec![1.0, 2.0, 3.0];
        let g = vec![0.0, 1e-13, 1.0];
        sgd_row_update(&mut w, &g, 1.0, 0.1, 0.5, 1e-12);
        assert_eq!(w[0], 1.0);
        assert_eq!(w[1], 2.0);
        assert!((w[2] - (3.0 - 0.1 * (1.0 + 0.5 * 3.0))).abs() < 1e-15);
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
}

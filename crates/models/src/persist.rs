//! Model persistence: JSON save/load for the built-in models.
//!
//! Both substrates are plain serde structs, so persistence is
//! deliberately boring — but shipping it (with version tagging) saves
//! every downstream user from writing the same ten lines and from silent
//! schema drift.

use std::io::{Read, Write};
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// Current on-disk schema version. Bump on breaking model-layout changes.
/// v2: weight matrices went feature-major (`w[idx*k + c]`, CRF
/// `emit[idx*l + y]`) for the lane kernels; v1 class-major payloads
/// would deserialize into transposed weights, so they must be rejected.
pub const SCHEMA_VERSION: u32 = 2;

/// Envelope written to disk: version tag + payload.
#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    schema_version: u32,
    model: T,
}

/// Errors from [`save_model`] / [`load_model`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The file's schema version is unsupported.
    Version {
        /// Version found in the file.
        found: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "model persistence I/O error: {e}"),
            Self::Json(e) => write!(f, "model persistence JSON error: {e}"),
            Self::Version { found } => write!(
                f,
                "unsupported model schema version {found} (this build reads {SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Json(e) => Some(e),
            Self::Version { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Serialize any serde-serializable model to `path` with a version tag.
pub fn save_model<T: Serialize>(model: &T, path: &Path) -> Result<(), PersistError> {
    let envelope = Envelope {
        schema_version: SCHEMA_VERSION,
        model,
    };
    let body = serde_json::to_vec(&envelope)?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(&body)?;
    Ok(())
}

/// Load a model saved by [`save_model`], rejecting incompatible schema
/// versions.
pub fn load_model<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    let mut body = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut body)?;
    let envelope: Envelope<T> = serde_json::from_slice(&body)?;
    if envelope.schema_version != SCHEMA_VERSION {
        return Err(PersistError::Version {
            found: envelope.schema_version,
        });
    }
    Ok(envelope.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Document, TextClassifier, TextClassifierConfig};
    use histal_core::model::Model;
    use histal_text::FeatureHasher;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("histal-persist-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn classifier_round_trips() {
        let hasher = FeatureHasher::new(1 << 10);
        let docs: Vec<Document> = (0..20)
            .map(|i| {
                let word = if i % 2 == 0 { "pos" } else { "neg" };
                Document::from_tokens(&[word.to_string(), format!("f{i}")], &hasher)
            })
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let mut model = TextClassifier::new(TextClassifierConfig {
            n_classes: 2,
            n_features: 1 << 10,
            epochs: 5,
            ..Default::default()
        });
        let s: Vec<&Document> = docs.iter().collect();
        let l: Vec<&usize> = labels.iter().collect();
        model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(1));

        let path = tmp("clf");
        save_model(&model, &path).unwrap();
        let restored: TextClassifier = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for d in &docs {
            // JSON float round-trip is exact per value, but f32 feature
            // values re-enter the f64 dot product with a fresh rounding
            // path; allow a ULP-scale tolerance.
            for (a, b) in model.predict_proba(d).iter().zip(restored.predict_proba(d)) {
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let path = tmp("ver");
        std::fs::write(&path, r#"{"schema_version": 999, "model": 42}"#).unwrap();
        let err = load_model::<u32>(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Version { found: 999 }));
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_model::<u32>(Path::new("/nonexistent/histal-nope.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn corrupt_json_is_json_error() {
        let path = tmp("bad");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_model::<u32>(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Json(_)));
    }
}

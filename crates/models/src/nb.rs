//! Multinomial Naive Bayes classifier.
//!
//! A second, structurally different text model: the paper argues its
//! history-aware strategies are "not task- or model-specific", and NB is
//! the classic counterpart to discriminative classifiers in the AL
//! literature (Settles 2009 uses it throughout). Training is a single
//! counting pass (no SGD), so its evaluation-score dynamics across AL
//! rounds differ qualitatively from the logistic model's — a good
//! stress-test for the history strategies.
//!
//! Counts come from the absolute values of the hashed features (the
//! signed hashing trick can produce negative feature values; magnitudes
//! retain the occurrence mass).

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_core::eval::{EvalCaps, SampleEval};
use histal_core::metrics::accuracy;
use histal_core::model::Model;

use crate::document::Document;

/// Hyper-parameters for [`NaiveBayes`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayesConfig {
    /// Number of classes.
    pub n_classes: usize,
    /// Hashed feature-space width.
    pub n_features: u32,
    /// Laplace/Lidstone smoothing mass per feature.
    pub alpha: f64,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        Self {
            n_classes: 2,
            n_features: 1 << 16,
            alpha: 0.1,
        }
    }
}

/// Multinomial Naive Bayes over hashed bag-of-n-grams documents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveBayes {
    config: NaiveBayesConfig,
    /// Per-class feature mass, row-major `n_classes × n_features`.
    counts: Vec<f64>,
    /// Per-class total feature mass.
    class_mass: Vec<f64>,
    /// Per-class document counts (for the prior).
    class_docs: Vec<f64>,
}

impl NaiveBayes {
    /// A fresh (uniform) model.
    pub fn new(config: NaiveBayesConfig) -> Self {
        assert!(config.n_classes >= 2, "need at least two classes");
        assert!(config.alpha > 0.0, "smoothing must be positive");
        let nf = config.n_features as usize;
        Self {
            counts: vec![0.0; config.n_classes * nf],
            class_mass: vec![0.0; config.n_classes],
            class_docs: vec![0.0; config.n_classes],
            config,
        }
    }

    /// Class posterior for one document.
    pub fn predict_proba(&self, doc: &Document) -> Vec<f64> {
        let k = self.config.n_classes;
        let nf = self.config.n_features as usize;
        let total_docs: f64 = self.class_docs.iter().sum();
        let alpha = self.config.alpha;
        let mut log_post: Vec<f64> = (0..k)
            .map(|c| {
                // Smoothed log prior.
                ((self.class_docs[c] + 1.0) / (total_docs + k as f64)).ln()
            })
            .collect();
        for (idx, val) in doc.features.iter() {
            if (idx as usize) >= nf {
                continue;
            }
            let weight = (val as f64).abs();
            for (c, lp) in log_post.iter_mut().enumerate() {
                let feature_mass = self.counts[c * nf + idx as usize];
                let likelihood = (feature_mass + alpha) / (self.class_mass[c] + alpha * nf as f64);
                *lp += weight * likelihood.ln();
            }
        }
        crate::math::softmax_inplace(&mut log_post);
        log_post
    }

    /// Argmax class prediction.
    pub fn predict(&self, doc: &Document) -> usize {
        let p = self.predict_proba(doc);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Model for NaiveBayes {
    type Sample = Document;
    type Label = usize;

    /// Recount from scratch (NB training is one pass; warm starting has
    /// no meaning here, and recounting keeps the model exact for the
    /// current labeled set).
    fn fit(&mut self, samples: &[&Document], labels: &[&usize], _rng: &mut ChaCha8Rng) {
        let nf = self.config.n_features as usize;
        self.counts.iter_mut().for_each(|c| *c = 0.0);
        self.class_mass.iter_mut().for_each(|c| *c = 0.0);
        self.class_docs.iter_mut().for_each(|c| *c = 0.0);
        for (doc, &&y) in samples.iter().zip(labels) {
            self.class_docs[y] += 1.0;
            for (idx, val) in doc.features.iter() {
                if (idx as usize) >= nf {
                    continue;
                }
                let w = (val as f64).abs();
                self.counts[y * nf + idx as usize] += w;
                self.class_mass[y] += w;
            }
        }
    }

    fn eval_sample(&self, sample: &Document, _caps: &EvalCaps, _seed: u64) -> SampleEval {
        // NB supports the probability-derived scores only; EGL/BALD/QBC
        // fields stay None and those strategies error cleanly.
        SampleEval::from_probs(self.predict_proba(sample))
    }

    fn metric(&self, samples: &[&Document], labels: &[&usize]) -> f64 {
        let pred: Vec<usize> = samples.iter().map(|d| self.predict(d)).collect();
        let gold: Vec<usize> = labels.iter().map(|&&l| l).collect();
        accuracy(&pred, &gold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_text::FeatureHasher;
    use rand::SeedableRng;

    fn doc(words: &[&str]) -> Document {
        let toks: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Document::from_tokens(&toks, &FeatureHasher::new(1 << 12))
    }

    fn config() -> NaiveBayesConfig {
        NaiveBayesConfig {
            n_features: 1 << 12,
            ..Default::default()
        }
    }

    fn fit(model: &mut NaiveBayes, docs: &[Document], labels: &[usize]) {
        let s: Vec<&Document> = docs.iter().collect();
        let l: Vec<&usize> = labels.iter().collect();
        model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(0));
    }

    #[test]
    fn untrained_posterior_is_uniform() {
        let m = NaiveBayes::new(config());
        let p = m.predict_proba(&doc(&["x"]));
        assert!((p[0] - 0.5).abs() < 1e-9);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn learns_separable_data() {
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let filler = format!("f{i}");
            if i % 2 == 0 {
                docs.push(doc(&["good", "fine", &filler]));
                labels.push(1);
            } else {
                docs.push(doc(&["bad", "poor", &filler]));
                labels.push(0);
            }
        }
        let mut m = NaiveBayes::new(config());
        fit(&mut m, &docs, &labels);
        assert_eq!(m.predict(&doc(&["good", "fine"])), 1);
        assert_eq!(m.predict(&doc(&["bad", "poor"])), 0);
        let s: Vec<&Document> = docs.iter().collect();
        let l: Vec<&usize> = labels.iter().collect();
        assert!(m.metric(&s, &l) > 0.9);
    }

    #[test]
    fn prior_reflects_class_imbalance() {
        // 9:1 imbalance with uninformative features → posterior leans to
        // the majority class on an unseen document.
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            docs.push(doc(&[&format!("w{i}")]));
            labels.push(usize::from(i == 0));
        }
        let mut m = NaiveBayes::new(config());
        fit(&mut m, &docs, &labels);
        let p = m.predict_proba(&doc(&["unseen"]));
        assert!(p[0] > p[1], "majority prior must dominate: {p:?}");
    }

    #[test]
    fn eval_sample_has_no_optional_caps() {
        let m = NaiveBayes::new(config());
        let caps = EvalCaps {
            egl: true,
            bald: true,
            ..Default::default()
        };
        let e = m.eval_sample(&doc(&["x"]), &caps, 0);
        assert!(e.egl.is_none() && e.bald.is_none());
        assert!(e.entropy > 0.0);
    }

    #[test]
    fn refit_replaces_counts() {
        let docs1 = vec![doc(&["aa"]), doc(&["bb"])];
        let mut m = NaiveBayes::new(config());
        fit(&mut m, &docs1, &[0, 1]);
        // Refit with flipped labels: prediction must flip.
        let before = m.predict(&doc(&["aa"]));
        fit(&mut m, &docs1, &[1, 0]);
        let after = m.predict(&doc(&["aa"]));
        assert_ne!(before, after);
    }

    #[test]
    #[should_panic(expected = "smoothing")]
    fn zero_alpha_panics() {
        let _ = NaiveBayes::new(NaiveBayesConfig {
            alpha: 0.0,
            ..config()
        });
    }
}

//! Multinomial logistic regression text classifier.
//!
//! The TextCNN stand-in: a softmax-linear model over hashed
//! bag-of-n-grams features, fine-tuned by SGD each active-learning round
//! (the paper fine-tunes for 10 epochs after each batch). It supplies
//! every capability the informative strategies need:
//!
//! * posteriors → entropy / LC / margin,
//! * closed-form expected gradient length (EGL, Eq. 5): for softmax NLL
//!   the gradient w.r.t. class `c` is `(p_c − δ_{cy}) · [x; 1]`, so
//!   `‖∇‖ = √(‖x‖²+1) · ‖p − e_y‖` and the expectation marginalizes over
//!   `y` in closed form,
//! * EGL-word (Eq. 12): `max_j |x_j| · Σ_y p_y ‖p − e_y‖` — the gradient
//!   norm restricted to one word's weight block,
//! * MC-dropout BALD: feature dropout at inference, mutual information
//!   `H(E[p]) − E[H(p)]`,
//! * bootstrap committees for QBC (mean KL to the committee mean).

#![allow(clippy::needless_range_loop)]

use std::cell::RefCell;

use rand::prelude::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_core::eval::{EvalCaps, SampleEval};
use histal_core::metrics::accuracy;
use histal_core::model::Model;
use histal_obs::span;
use histal_obs::trace::Level;
use histal_text::SparseVec;

use crate::document::Document;
use crate::math::{kl_divergence, softmax_inplace};

/// Hyper-parameters for [`TextClassifier`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextClassifierConfig {
    /// Number of classes.
    pub n_classes: usize,
    /// Hashed feature-space width.
    pub n_features: u32,
    /// SGD epochs per [`Model::fit`] call (the paper fine-tunes 10).
    pub epochs: usize,
    /// SGD step size.
    pub lr: f64,
    /// L2 weight decay applied to touched coordinates.
    pub l2: f64,
    /// Inference-time feature dropout probability for BALD.
    pub dropout: f64,
    /// Training-time feature dropout (the TextCNN analogue's dropout
    /// regularizer). Besides regularizing, this makes successive rounds'
    /// evaluation scores genuinely stochastic — the fluctuation signal
    /// the history-aware strategies exploit.
    pub train_dropout: f64,
    /// MC-dropout passes for BALD.
    pub mc_passes: usize,
    /// Committee size for QBC; 0 disables committee training.
    pub committee: usize,
    /// Epochs per committee member (bootstrap-trained from scratch).
    pub committee_epochs: usize,
    /// Fine-tune from the previous round's weights (paper behaviour) or
    /// retrain from zero each round.
    pub warm_start: bool,
}

impl Default for TextClassifierConfig {
    fn default() -> Self {
        Self {
            n_classes: 2,
            n_features: 1 << 16,
            epochs: 10,
            lr: 0.5,
            l2: 1e-5,
            dropout: 0.25,
            train_dropout: 0.35,
            mc_passes: 16,
            committee: 0,
            committee_epochs: 5,
            warm_start: true,
        }
    }
}

/// Reusable posterior buffers for the evaluation hot path (one MC-dropout
/// pass posterior and its running mean). Thread-local so parallel
/// pool-evaluation workers each keep their own without locking.
#[derive(Debug, Default)]
struct PosteriorScratch {
    pass: Vec<f64>,
    mean: Vec<f64>,
}

thread_local! {
    static POSTERIOR: RefCell<PosteriorScratch> = RefCell::new(PosteriorScratch::default());
}

/// One linear softmax scorer (weights + biases).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Linear {
    n_classes: usize,
    n_features: u32,
    /// Feature-major `n_features × n_classes`: `w[idx*k + c]` keeps one
    /// hashed feature's class block contiguous, so the sparse hot loops
    /// (logits, dropout posteriors, SGD updates) each touch one cache
    /// line per feature and hand the class block to the lane kernels.
    /// Per output cell the accumulation still runs over features in
    /// index order, so results are bit-identical to the class-major
    /// layout this replaces.
    w: Vec<f64>,
    b: Vec<f64>,
}

impl Linear {
    fn zeros(n_classes: usize, n_features: u32) -> Self {
        Self {
            n_classes,
            n_features,
            w: vec![0.0; n_classes * n_features as usize],
            b: vec![0.0; n_classes],
        }
    }

    fn logits(&self, x: &SparseVec) -> Vec<f64> {
        let mut out = self.b.clone();
        let (nf, k) = (self.n_features as usize, self.n_classes);
        for (idx, val) in x.iter() {
            // Out-of-range hashed indices are ignored, matching the old
            // dot_dense-based path.
            if (idx as usize) < nf {
                let row = &self.w[idx as usize * k..(idx as usize + 1) * k];
                crate::kernels::axpy(&mut out, row, val as f64);
            }
        }
        out
    }

    fn probs(&self, x: &SparseVec) -> Vec<f64> {
        let mut p = self.logits(x);
        softmax_inplace(&mut p);
        p
    }

    /// Posterior under one random feature-dropout mask (inverted
    /// dropout), written into `out`. Draws exactly one uniform per
    /// in-range feature, in feature order — callers rely on that to keep
    /// the MC-dropout stream reproducible.
    fn probs_dropout_into(
        &self,
        x: &SparseVec,
        dropout: f64,
        rng: &mut ChaCha8Rng,
        out: &mut Vec<f64>,
    ) {
        let keep = 1.0 - dropout;
        let scale = 1.0 / keep;
        let (nf, k) = (self.n_features as usize, self.n_classes);
        out.clear();
        out.extend_from_slice(&self.b);
        for (idx, val) in x.iter() {
            // Out-of-range hashed indices are ignored, matching logits.
            if (idx as usize) < nf && rng.gen::<f64>() < keep {
                let row = &self.w[idx as usize * k..(idx as usize + 1) * k];
                crate::kernels::axpy(out, row, val as f64 * scale);
            }
        }
        softmax_inplace(out);
    }

    /// Minibatch size for the parallel SGD kernel. Gradients within a
    /// minibatch are taken at the batch-start weights and applied as a
    /// sum, so the value is part of the training semantics — it must not
    /// depend on the thread count.
    const MINIBATCH: usize = 8;
    /// Items per parallel accumulation chunk (see
    /// [`crate::parallel::chunked_grads`]); fixed for determinism.
    const GRAD_CHUNK: usize = 2;

    /// Minibatch SGD with inverted feature dropout.
    ///
    /// Per-sample gradients inside one minibatch are computed in
    /// parallel at the batch-start weights; bias gradients reduce
    /// through fixed-order chunk accumulators and sparse weight
    /// gradients apply serially in sample order, so the result is
    /// bit-identical however many threads run. Dropout masks come from
    /// per-sample RNGs derived from one `epoch_seed` drawn serially from
    /// the driver stream — worker threads never touch `rng`.
    #[allow(clippy::too_many_arguments)]
    fn train(
        &mut self,
        samples: &[&Document],
        labels: &[&usize],
        epochs: usize,
        lr: f64,
        l2: f64,
        train_dropout: f64,
        rng: &mut ChaCha8Rng,
    ) {
        let n = samples.len();
        if n == 0 {
            return;
        }
        let nf = self.n_features as usize;
        let k = self.n_classes;
        // Hoisted out of the epoch loop: bounds-filter and widen each
        // sample's features once per fit instead of once per step.
        let feats: Vec<Vec<(u32, f64)>> = samples
            .iter()
            .map(|d| {
                d.features
                    .iter()
                    .filter(|&(idx, _)| (idx as usize) < nf)
                    .map(|(idx, val)| (idx, val as f64))
                    .collect()
            })
            .collect();
        let keep = 1.0 - train_dropout;
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..epochs {
            order.shuffle(rng);
            let epoch_seed: u64 = rng.gen();
            for (batch_no, batch) in order.chunks(Self::MINIBATCH).enumerate() {
                let base = batch_no * Self::MINIBATCH;
                let (w, b) = (&self.w, &self.b);
                let (per_item, bias_grad) = crate::parallel::chunked_grads(
                    batch.len(),
                    Self::GRAD_CHUNK,
                    k,
                    |j, bias_acc| {
                        let i = batch[j];
                        let mut srng = ChaCha8Rng::seed_from_u64(crate::parallel::derive_seed(
                            epoch_seed,
                            (base + j) as u64,
                        ));
                        // One dropout mask per sample, reused for the
                        // forward pass and the gradient.
                        let masked: Vec<(u32, f64)> = feats[i]
                            .iter()
                            .filter_map(|&(idx, v)| {
                                if train_dropout == 0.0 || srng.gen::<f64>() < keep {
                                    Some((idx, v / keep))
                                } else {
                                    None
                                }
                            })
                            .collect();
                        let mut logits = b.clone();
                        for &(idx, v) in &masked {
                            let row = &w[idx as usize * k..(idx as usize + 1) * k];
                            crate::kernels::axpy(&mut logits, row, v);
                        }
                        softmax_inplace(&mut logits);
                        let y = *labels[i];
                        for c in 0..k {
                            logits[c] -= if c == y { 1.0 } else { 0.0 };
                            bias_acc[c] += logits[c];
                        }
                        (masked, logits)
                    },
                );
                for (bc, g) in self.b.iter_mut().zip(&bias_grad) {
                    *bc -= lr * g;
                }
                // Sparse weight updates in sample order (serial, so the
                // L2 term sees deterministically-evolving weights). One
                // sample's features are unique, so within a sample each
                // weight cell is touched once and the feature-outer
                // order is bit-identical to the old class-outer order.
                // eps = 0.0: logreg applies every update (no skip).
                for (masked, g) in &per_item {
                    for &(idx, v) in masked {
                        let row = &mut self.w[idx as usize * k..(idx as usize + 1) * k];
                        crate::kernels::sgd_row_update(row, g, v, lr, l2, 0.0);
                    }
                }
            }
        }
    }
}

/// The text classification model (paper Task 1 substrate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextClassifier {
    config: TextClassifierConfig,
    main: Linear,
    committee: Vec<Linear>,
}

impl TextClassifier {
    /// A fresh (zero-weight) classifier.
    pub fn new(config: TextClassifierConfig) -> Self {
        assert!(config.n_classes >= 2, "need at least two classes");
        assert!(
            (0.0..1.0).contains(&config.dropout),
            "dropout must be in [0, 1)"
        );
        let main = Linear::zeros(config.n_classes, config.n_features);
        Self {
            config,
            main,
            committee: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TextClassifierConfig {
        &self.config
    }

    /// Class posterior for one document.
    pub fn predict_proba(&self, doc: &Document) -> Vec<f64> {
        self.main.probs(&doc.features)
    }

    /// Argmax class prediction.
    pub fn predict(&self, doc: &Document) -> usize {
        let p = self.predict_proba(doc);
        argmax(&p)
    }

    /// Closed-form expected gradient length (Eq. 5).
    pub fn egl(&self, doc: &Document) -> f64 {
        let p = self.predict_proba(doc);
        let x_norm = (doc.features.norm().powi(2) + 1.0).sqrt(); // +1 for bias
        x_norm * expected_grad_class_factor(&p)
    }

    /// EGL of word embedding (Eq. 12): the expected gradient norm on the
    /// most influential word's weight block.
    pub fn egl_word(&self, doc: &Document) -> f64 {
        let p = self.predict_proba(doc);
        doc.max_word_weight * expected_grad_class_factor(&p)
    }

    /// BALD mutual information via MC dropout. All pass posteriors live
    /// in thread-local scratch, so repeated calls over a pool allocate
    /// nothing.
    pub fn bald(&self, doc: &Document, rng: &mut ChaCha8Rng) -> f64 {
        POSTERIOR.with(|cell| {
            let ws = &mut *cell.borrow_mut();
            let PosteriorScratch { pass, mean } = ws;
            let passes = self.config.mc_passes.max(2);
            mean.clear();
            mean.resize(self.config.n_classes, 0.0);
            let mut mean_entropy = 0.0;
            for _ in 0..passes {
                self.main
                    .probs_dropout_into(&doc.features, self.config.dropout, rng, pass);
                mean_entropy += histal_core::eval::entropy_of(pass);
                for (m, pi) in mean.iter_mut().zip(pass.iter()) {
                    *m += pi;
                }
            }
            for m in mean.iter_mut() {
                *m /= passes as f64;
            }
            mean_entropy /= passes as f64;
            (histal_core::eval::entropy_of(mean) - mean_entropy).max(0.0)
        })
    }

    /// Mean KL of committee members from the committee mean (Eq. 6).
    /// Returns `None` if no committee was trained.
    pub fn qbc_kl(&self, doc: &Document) -> Option<f64> {
        if self.committee.is_empty() {
            return None;
        }
        // Members score independently; evaluation order is immaterial
        // and the collect preserves member order, so this is safe to
        // fan out.
        let dists: Vec<Vec<f64>> = crate::parallel::map_items(self.committee.len(), |m| {
            self.committee[m].probs(&doc.features)
        });
        let k = self.config.n_classes;
        let mut avg = vec![0.0; k];
        for d in &dists {
            for (a, v) in avg.iter_mut().zip(d) {
                *a += v;
            }
        }
        for a in &mut avg {
            *a /= dists.len() as f64;
        }
        let kl: f64 = dists.iter().map(|d| kl_divergence(d, &avg)).sum();
        Some(kl / dists.len() as f64)
    }
}

/// `Σ_y p_y · ‖p − e_y‖₂` — the class-space factor shared by EGL and
/// EGL-word.
fn expected_grad_class_factor(p: &[f64]) -> f64 {
    let norm_sq: f64 = p.iter().map(|v| v * v).sum();
    p.iter()
        .map(|&py| {
            // ‖p − e_y‖² = ‖p‖² − 2 p_y + 1
            py * (norm_sq - 2.0 * py + 1.0).max(0.0).sqrt()
        })
        .sum()
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl Model for TextClassifier {
    type Sample = Document;
    type Label = usize;

    fn fit(&mut self, samples: &[&Document], labels: &[&usize], rng: &mut ChaCha8Rng) {
        if samples.is_empty() {
            return;
        }
        let _span = span!(Level::Debug, "logreg.fit", n = samples.len());
        if !self.config.warm_start {
            self.main = Linear::zeros(self.config.n_classes, self.config.n_features);
        }
        self.main.train(
            samples,
            labels,
            self.config.epochs,
            self.config.lr,
            self.config.l2,
            self.config.train_dropout,
            rng,
        );
        // Bootstrap committee for QBC: same labeled set, resampled with
        // replacement, trained from scratch with its own randomness.
        // Bootstrap indices and member seeds are drawn serially from the
        // driver stream; the independent members then train in parallel.
        let n = samples.len();
        let plans: Vec<(Vec<usize>, u64)> = (0..self.config.committee)
            .map(|_| {
                let boot: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                (boot, rng.gen())
            })
            .collect();
        let cfg = &self.config;
        self.committee = crate::parallel::map_items(plans.len(), |m| {
            let (boot, member_seed) = &plans[m];
            let boot_samples: Vec<&Document> = boot.iter().map(|&i| samples[i]).collect();
            let boot_labels: Vec<&usize> = boot.iter().map(|&i| labels[i]).collect();
            let mut member = Linear::zeros(cfg.n_classes, cfg.n_features);
            let mut mrng = ChaCha8Rng::seed_from_u64(*member_seed);
            member.train(
                &boot_samples,
                &boot_labels,
                cfg.committee_epochs,
                cfg.lr,
                cfg.l2,
                cfg.train_dropout,
                &mut mrng,
            );
            member
        });
    }

    fn eval_sample(&self, sample: &Document, caps: &EvalCaps, seed: u64) -> SampleEval {
        let p = self.predict_proba(sample);
        // EGL and EGL-word share the class-space factor, and both start
        // from the posterior already in hand — fold them off it instead
        // of recomputing it per capability.
        let grad_factor = (caps.egl || caps.egl_word).then(|| expected_grad_class_factor(&p));
        let mut eval = SampleEval::from_probs(p);
        if caps.egl {
            let x_norm = (sample.features.norm().powi(2) + 1.0).sqrt(); // +1 for bias
            eval.egl = grad_factor.map(|f| x_norm * f);
        }
        if caps.egl_word {
            eval.egl_word = grad_factor.map(|f| sample.max_word_weight * f);
        }
        if caps.bald {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            eval.bald = Some(self.bald(sample, &mut rng));
        }
        if caps.qbc {
            eval.qbc_kl = self.qbc_kl(sample);
        }
        eval
    }

    fn metric(&self, samples: &[&Document], labels: &[&usize]) -> f64 {
        let _span = span!(Level::Debug, "logreg.metric", n = samples.len());
        let pred: Vec<usize> = samples.iter().map(|d| self.predict(d)).collect();
        let gold: Vec<usize> = labels.iter().map(|&&l| l).collect();
        accuracy(&pred, &gold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_text::FeatureHasher;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn hasher() -> FeatureHasher {
        FeatureHasher::new(1 << 12)
    }

    fn doc(words: &[&str]) -> Document {
        let toks: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Document::from_tokens(&toks, &hasher())
    }

    fn toy_data() -> (Vec<Document>, Vec<usize>) {
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let filler = format!("f{i}");
            if i % 2 == 0 {
                docs.push(doc(&["good", "great", &filler]));
                labels.push(1);
            } else {
                docs.push(doc(&["bad", "awful", &filler]));
                labels.push(0);
            }
        }
        (docs, labels)
    }

    fn small_config() -> TextClassifierConfig {
        TextClassifierConfig {
            n_features: 1 << 12,
            epochs: 15,
            mc_passes: 8,
            ..Default::default()
        }
    }

    fn fit(model: &mut TextClassifier, docs: &[Document], labels: &[usize], seed: u64) {
        let s: Vec<&Document> = docs.iter().collect();
        let l: Vec<&usize> = labels.iter().collect();
        model.fit(&s, &l, &mut rng(seed));
    }

    #[test]
    fn probs_sum_to_one_untrained() {
        let m = TextClassifier::new(small_config());
        let p = m.predict_proba(&doc(&["x"]));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn learns_separable_data() {
        let (docs, labels) = toy_data();
        let mut m = TextClassifier::new(small_config());
        fit(&mut m, &docs, &labels, 1);
        assert_eq!(m.predict(&doc(&["good", "great"])), 1);
        assert_eq!(m.predict(&doc(&["bad", "awful"])), 0);
        let s: Vec<&Document> = docs.iter().collect();
        let l: Vec<&usize> = labels.iter().collect();
        assert!(m.metric(&s, &l) > 0.95);
    }

    #[test]
    fn egl_higher_for_uncertain_sample() {
        let (docs, labels) = toy_data();
        let mut m = TextClassifier::new(small_config());
        fit(&mut m, &docs, &labels, 2);
        let certain = m.egl(&doc(&["good", "great"]));
        let uncertain = m.egl(&doc(&["good", "bad"]));
        assert!(
            uncertain > certain,
            "uncertain {uncertain} vs certain {certain}"
        );
    }

    #[test]
    fn egl_class_factor_bounds() {
        // Deterministic posterior → factor 0; uniform → positive.
        assert!(expected_grad_class_factor(&[1.0, 0.0]) < 1e-9);
        assert!(expected_grad_class_factor(&[0.5, 0.5]) > 0.5);
    }

    #[test]
    fn bald_near_zero_for_empty_doc_and_positive_for_ambiguous() {
        let (docs, labels) = toy_data();
        let mut m = TextClassifier::new(small_config());
        fit(&mut m, &docs, &labels, 3);
        let ambiguous = m.bald(&doc(&["good", "bad"]), &mut rng(9));
        assert!(ambiguous >= 0.0);
        // An empty document gets the same posterior under every mask →
        // zero mutual information.
        let empty = m.bald(&Document::default(), &mut rng(9));
        assert!(empty.abs() < 1e-9);
    }

    #[test]
    fn qbc_requires_committee() {
        let (docs, labels) = toy_data();
        let mut m = TextClassifier::new(small_config());
        fit(&mut m, &docs, &labels, 4);
        assert!(m.qbc_kl(&doc(&["good"])).is_none());
        let mut m2 = TextClassifier::new(TextClassifierConfig {
            committee: 3,
            ..small_config()
        });
        fit(&mut m2, &docs, &labels, 4);
        let kl = m2.qbc_kl(&doc(&["good", "bad"])).unwrap();
        assert!(kl >= 0.0);
    }

    #[test]
    fn eval_sample_respects_caps() {
        let (docs, labels) = toy_data();
        let mut m = TextClassifier::new(small_config());
        fit(&mut m, &docs, &labels, 5);
        let d = doc(&["good"]);
        let none = m.eval_sample(&d, &EvalCaps::default(), 7);
        assert!(none.egl.is_none() && none.bald.is_none());
        let caps = EvalCaps {
            egl: true,
            egl_word: true,
            bald: true,
            ..Default::default()
        };
        let full = m.eval_sample(&d, &caps, 7);
        assert!(full.egl.is_some() && full.egl_word.is_some() && full.bald.is_some());
        // Determinism under the same seed.
        let again = m.eval_sample(&d, &caps, 7);
        assert_eq!(full.bald, again.bald);
    }

    #[test]
    fn eval_sample_matches_standalone_scores() {
        // The batched eval path folds EGL / EGL-word off one shared
        // posterior and runs BALD through thread-local scratch; it must
        // stay bit-identical to the standalone public methods.
        let (docs, labels) = toy_data();
        let mut m = TextClassifier::new(small_config());
        fit(&mut m, &docs, &labels, 11);
        let d = doc(&["good", "bad", "odd"]);
        let caps = EvalCaps {
            egl: true,
            egl_word: true,
            bald: true,
            ..Default::default()
        };
        let eval = m.eval_sample(&d, &caps, 13);
        assert_eq!(eval.egl, Some(m.egl(&d)));
        assert_eq!(eval.egl_word, Some(m.egl_word(&d)));
        assert_eq!(eval.bald, Some(m.bald(&d, &mut rng(13))));
        let p = m.predict_proba(&d);
        assert_eq!(eval.entropy, histal_core::eval::entropy_of(&p));
    }

    #[test]
    fn warm_start_vs_scratch() {
        let (docs, labels) = toy_data();
        let mut warm = TextClassifier::new(small_config());
        fit(&mut warm, &docs, &labels, 6);
        let before = warm.predict_proba(&doc(&["good", "great"]))[1];
        // Second fit on the same data sharpens the posterior further.
        fit(&mut warm, &docs, &labels, 7);
        let after = warm.predict_proba(&doc(&["good", "great"]))[1];
        assert!(after >= before - 1e-6);

        let mut cold = TextClassifier::new(TextClassifierConfig {
            warm_start: false,
            epochs: 1,
            ..small_config()
        });
        fit(&mut cold, &docs, &labels, 8);
        let p1 = cold.predict_proba(&doc(&["good", "great"]))[1];
        fit(&mut cold, &docs, &labels, 8);
        let p2 = cold.predict_proba(&doc(&["good", "great"]))[1];
        // Retrained from scratch with identical seed → identical model.
        assert!((p1 - p2).abs() < 1e-12);
    }

    #[test]
    fn empty_fit_is_noop() {
        let mut m = TextClassifier::new(small_config());
        m.fit(&[], &[], &mut rng(0));
        let p = m.predict_proba(&doc(&["x"]));
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multiclass_training() {
        let mut cfg = small_config();
        cfg.n_classes = 3;
        let classes: [&[&str]; 3] = [&["alpha", "one"], &["beta", "two"], &["gamma", "three"]];
        let mut docs = Vec::new();
        let mut labels = Vec::new();
        for rep in 0..10 {
            for (c, words) in classes.iter().enumerate() {
                let filler = format!("n{rep}");
                let mut ws: Vec<&str> = words.to_vec();
                ws.push(&filler);
                docs.push(doc(&ws));
                labels.push(c);
            }
        }
        let mut m = TextClassifier::new(cfg);
        fit(&mut m, &docs, &labels, 9);
        assert_eq!(m.predict(&doc(&["alpha", "one"])), 0);
        assert_eq!(m.predict(&doc(&["beta", "two"])), 1);
        assert_eq!(m.predict(&doc(&["gamma", "three"])), 2);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn one_class_panics() {
        let mut cfg = small_config();
        cfg.n_classes = 1;
        let _ = TextClassifier::new(cfg);
    }
}

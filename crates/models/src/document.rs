//! Featurized documents for the text classifier.

use serde::{Deserialize, Serialize};

use histal_text::{ngrams, FeatureHasher, SparseVec};

/// A featurized document: an L2-normalized bag-of-n-grams vector plus the
/// per-word feature weights needed for the EGL-word strategy.
///
/// In TextCNN, EGL-word inspects the gradient on each word's *embedding*.
/// In this linear substitute, a word's "embedding block" is its hashed
/// weight column; the gradient norm on that block factorizes as
/// `|feature value| · ‖p − e_y‖`, so all EGL-word needs per word is the
/// magnitude of its contribution to the document vector —
/// [`Document::max_word_weight`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Document {
    /// L2-normalized hashed bag-of-n-grams representation.
    pub features: SparseVec,
    /// Largest absolute per-word feature value in `features` (the most
    /// influential single word for EGL-word).
    pub max_word_weight: f64,
    /// Token count (diagnostics; the classifier itself is length-blind).
    pub n_tokens: usize,
}

impl Document {
    /// Featurize a tokenized sentence: unigram+bigram bag, hashed and
    /// L2-normalized.
    pub fn from_tokens(tokens: &[String], hasher: &FeatureHasher) -> Self {
        let grams = ngrams(tokens, 2);
        let features = hasher.hash_bag_normalized(grams.iter().map(String::as_str));
        // Per-word contribution magnitude: |count| / ‖raw bag‖. Compute the
        // raw counts of unigrams only (a "word" in EGL-word is a token).
        let raw = hasher.hash_bag(grams.iter().map(String::as_str));
        let norm = raw.norm();
        let mut max_count = 0.0f64;
        if norm > 0.0 {
            let mut counts = std::collections::HashMap::new();
            for t in tokens {
                *counts.entry(t.as_str()).or_insert(0u32) += 1;
            }
            for (_, c) in counts {
                max_count = max_count.max(c as f64);
            }
        }
        let max_word_weight = if norm > 0.0 { max_count / norm } else { 0.0 };
        Self {
            features,
            max_word_weight,
            n_tokens: tokens.len(),
        }
    }

    /// Build directly from a prepared sparse vector (already normalized or
    /// not — used by tests and custom pipelines).
    pub fn from_sparse(features: SparseVec) -> Self {
        let max_word_weight = features
            .values()
            .iter()
            .map(|v| (*v as f64).abs())
            .fold(0.0, f64::max);
        let n_tokens = features.nnz();
        Self {
            features,
            max_word_weight,
            n_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn from_tokens_is_normalized() {
        let h = FeatureHasher::new(1 << 14);
        let d = Document::from_tokens(&toks(&["a", "b", "c"]), &h);
        assert!((d.features.norm() - 1.0).abs() < 1e-6);
        assert_eq!(d.n_tokens, 3);
    }

    #[test]
    fn empty_document_is_safe() {
        let h = FeatureHasher::new(1 << 14);
        let d = Document::from_tokens(&[], &h);
        assert!(d.features.is_empty());
        assert_eq!(d.max_word_weight, 0.0);
    }

    #[test]
    fn repeated_word_raises_max_weight() {
        let h = FeatureHasher::new(1 << 14);
        let plain = Document::from_tokens(&toks(&["a", "b", "c", "d"]), &h);
        let repeated = Document::from_tokens(&toks(&["a", "a", "a", "d"]), &h);
        assert!(repeated.max_word_weight > plain.max_word_weight);
    }

    #[test]
    fn from_sparse_derives_max_weight() {
        let v = SparseVec::from_pairs(vec![(0, 0.5), (3, -2.0)]);
        let d = Document::from_sparse(v);
        assert!((d.max_word_weight - 2.0).abs() < 1e-12);
        assert_eq!(d.n_tokens, 2);
    }
}

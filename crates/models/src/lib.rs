//! # histal-models — the ML substrate under the active-learning loop
//!
//! The paper fine-tunes a TextCNN for text classification and a
//! BiLSTM-CNNs-CRF for NER. This crate provides pure-Rust stand-ins that
//! expose *exactly the quantities the query strategies consume* (class
//! posteriors, expected gradient lengths, per-word embedding gradients,
//! MC-dropout posteriors, committee disagreement, sequence path
//! probabilities) while training in milliseconds on CPU:
//!
//! * [`TextClassifier`] — multinomial logistic regression over hashed
//!   bag-of-n-grams features, with warm-start SGD fine-tuning, closed-form
//!   EGL / EGL-word, MC-dropout BALD, and bootstrap committees for QBC;
//! * [`CrfTagger`] — a linear-chain CRF with exact forward–backward
//!   marginals, Viterbi decoding, and the MNLP score.
//!
//! Both implement [`histal_core::Model`], so they plug straight into
//! [`histal_core::ActiveLearner`]. See `DESIGN.md` at the workspace root
//! for the substitution rationale.

pub mod crf;
pub mod document;
pub mod kernels;
pub mod logreg;
pub mod math;
pub mod nb;
pub mod parallel;
pub mod persist;
pub mod ranker;

pub use crf::{CrfConfig, CrfTagger, Sentence};
pub use document::Document;
pub use logreg::{TextClassifier, TextClassifierConfig};
pub use nb::{NaiveBayes, NaiveBayesConfig};
pub use persist::{load_model, save_model, PersistError};
pub use ranker::{RankingModel, RankingModelConfig};

//! Deterministic parallel primitives for the training kernels.
//!
//! Parallel floating-point reductions are normally non-deterministic
//! because the combine order depends on thread scheduling. The helpers
//! here make the combine order a pure function of the *data layout*
//! instead: work is split into fixed-size chunks (independent of the
//! thread count), each chunk fills its own dense accumulator serially,
//! and the per-chunk partials are folded in chunk-index order. Running
//! with 1 thread or 16 therefore produces bit-identical results — the
//! property the serial-vs-parallel equivalence tests pin down.
//!
//! Per-sample randomness (dropout masks) never touches the shared
//! driver RNG from worker threads. Callers draw one `u64` per epoch
//! from the driver stream and derive an independent per-sample RNG with
//! [`derive_seed`], keyed by the sample's position in the epoch. The
//! derived streams are identical however many threads execute them.

/// SplitMix64-style seed derivation: decorrelates `(base, index)` pairs
/// into independent seeds. Pure function — safe to call from any thread.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parallel map over `0..n` collecting results in index order.
/// Determinism: the output vector is ordered by index regardless of
/// which thread computed which element.
pub fn map_items<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    rayon::run_indexed(n, f)
}

/// Chunked parallel gradient accumulation.
///
/// Splits `0..n_items` into chunks of `chunk_size` (the last may be
/// short). Each chunk runs `f(item, &mut dense)` serially over its items
/// with a fresh `dense` accumulator of `dense_dim` zeros; chunks run in
/// parallel. Returns the per-item results in item order plus the dense
/// accumulators summed **in chunk order**, so the floating-point sum
/// association depends only on `chunk_size`, never on the thread count.
pub fn chunked_grads<T, F>(
    n_items: usize,
    chunk_size: usize,
    dense_dim: usize,
    f: F,
) -> (Vec<T>, Vec<f64>)
where
    T: Send,
    F: Fn(usize, &mut [f64]) -> T + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = n_items.div_ceil(chunk_size);
    let per_chunk: Vec<(Vec<T>, Vec<f64>)> = rayon::run_indexed(n_chunks, |c| {
        let lo = c * chunk_size;
        let hi = (lo + chunk_size).min(n_items);
        let mut dense = vec![0.0; dense_dim];
        let items: Vec<T> = (lo..hi).map(|i| f(i, &mut dense)).collect();
        (items, dense)
    });
    combine_chunks(per_chunk, n_items, dense_dim)
}

/// Serial reference for [`chunked_grads`] with the *same* chunk
/// association: the property tests assert the two agree to 0 ULP.
pub fn chunked_grads_serial<T, F>(
    n_items: usize,
    chunk_size: usize,
    dense_dim: usize,
    f: F,
) -> (Vec<T>, Vec<f64>)
where
    F: Fn(usize, &mut [f64]) -> T,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = n_items.div_ceil(chunk_size);
    let per_chunk: Vec<(Vec<T>, Vec<f64>)> = (0..n_chunks)
        .map(|c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(n_items);
            let mut dense = vec![0.0; dense_dim];
            let items: Vec<T> = (lo..hi).map(|i| f(i, &mut dense)).collect();
            (items, dense)
        })
        .collect();
    combine_chunks(per_chunk, n_items, dense_dim)
}

fn combine_chunks<T>(
    per_chunk: Vec<(Vec<T>, Vec<f64>)>,
    n_items: usize,
    dense_dim: usize,
) -> (Vec<T>, Vec<f64>) {
    let mut items = Vec::with_capacity(n_items);
    let mut dense = vec![0.0; dense_dim];
    for (chunk_items, chunk_dense) in per_chunk {
        items.extend(chunk_items);
        for (d, v) in dense.iter_mut().zip(&chunk_dense) {
            *d += v;
        }
    }
    (items, dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert!(a != b && a != c && b != c);
        // Pure function.
        assert_eq!(derive_seed(1, 0), a);
    }

    #[test]
    fn map_items_preserves_index_order() {
        let out = map_items(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_matches_serial_reference_exactly() {
        // Adversarially-scaled values so association actually matters.
        let vals: Vec<f64> = (0..37)
            .map(|i| (i as f64 - 18.0) * 1e10_f64.powi((i % 5) - 2))
            .collect();
        for chunk in [1, 2, 3, 8, 37, 64] {
            let (pi, pd) = chunked_grads(vals.len(), chunk, 2, |i, acc| {
                acc[0] += vals[i];
                acc[1] += vals[i] * 0.5;
                i
            });
            let (si, sd) = chunked_grads_serial(vals.len(), chunk, 2, |i, acc| {
                acc[0] += vals[i];
                acc[1] += vals[i] * 0.5;
                i
            });
            assert_eq!(pi, si, "chunk {chunk}");
            assert_eq!(pd[0].to_bits(), sd[0].to_bits(), "chunk {chunk}");
            assert_eq!(pd[1].to_bits(), sd[1].to_bits(), "chunk {chunk}");
        }
    }

    #[test]
    fn empty_input_is_safe() {
        let (items, dense) = chunked_grads(0, 4, 3, |_, _| 0u8);
        assert!(items.is_empty());
        assert_eq!(dense, vec![0.0; 3]);
    }
}

//! Linear-chain CRF sequence tagger.
//!
//! The BiLSTM-CNNs-CRF stand-in for the NER task. Emission scores are
//! linear in hashed token features (word identity, neighbours, character
//! n-grams, shape — the information the reference model's CNN/embedding
//! layers provide); transitions, start and end scores are dense. Training
//! minimizes the exact negative log-likelihood via forward–backward;
//! decoding is Viterbi. The sequence-level query-strategy quantities are
//! exact:
//!
//! * `1 − P(ŷ|x)` (least confidence over the best path),
//! * MNLP (Eq. 13): the length-normalized best-path log-probability,
//! * per-token marginal entropies (mean = the sequence entropy score),
//! * top-2 path margin via 2-best Viterbi (Scheffer et al. 2001),
//! * MC-dropout BALD via per-token Viterbi variation ratios (the
//!   sequence-model BALD of Siddhant & Lipton 2018),
//! * bootstrap-committee QBC over token marginals (Eq. 6).

#![allow(clippy::needless_range_loop)]
#![allow(clippy::identity_op)]

use std::cell::RefCell;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_core::eval::{EvalCaps, SampleEval};
use histal_core::metrics::span_f1;
use histal_core::model::Model;
use histal_core::tags::TagScheme;
use histal_obs::span;
use histal_obs::trace::Level;
use histal_text::{char_ngrams, FeatureHasher, SparseVec};

use crate::kernels;
use crate::math::logsumexp;

/// A featurized sentence: one sparse emission-feature vector per token.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sentence {
    /// Per-token emission features.
    pub token_feats: Vec<SparseVec>,
}

impl Sentence {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.token_feats.len()
    }

    /// True for the empty sentence.
    pub fn is_empty(&self) -> bool {
        self.token_feats.is_empty()
    }

    /// Standard NER feature template: current/previous/next word,
    /// lowercased word, character 3-grams, and shape flags (capitalized,
    /// all-caps, digit), all hashed into one space.
    pub fn featurize(tokens: &[String], hasher: &FeatureHasher) -> Self {
        let token_feats = (0..tokens.len())
            .map(|i| {
                let mut feats: Vec<String> = Vec::with_capacity(12);
                let w = &tokens[i];
                feats.push(format!("w={w}"));
                feats.push(format!("lw={}", w.to_lowercase()));
                if i > 0 {
                    feats.push(format!("w-1={}", tokens[i - 1]));
                } else {
                    feats.push("BOS".to_string());
                }
                if i + 1 < tokens.len() {
                    feats.push(format!("w+1={}", tokens[i + 1]));
                } else {
                    feats.push("EOS".to_string());
                }
                for g in char_ngrams(w, 3) {
                    feats.push(format!("c3={g}"));
                }
                if w.chars().next().is_some_and(|c| c.is_uppercase()) {
                    feats.push("cap".to_string());
                }
                if w.chars().all(|c| c.is_uppercase()) && w.len() > 1 {
                    feats.push("allcap".to_string());
                }
                if w.chars().any(|c| c.is_ascii_digit()) {
                    feats.push("digit".to_string());
                }
                hasher.hash_bag_normalized(feats.iter().map(String::as_str))
            })
            .collect();
        Self { token_feats }
    }
}

/// Hyper-parameters for [`CrfTagger`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrfConfig {
    /// Hashed emission feature width.
    pub n_features: u32,
    /// SGD epochs per [`Model::fit`] call.
    pub epochs: usize,
    /// SGD step size.
    pub lr: f64,
    /// L2 decay on touched emission weights and all transitions.
    pub l2: f64,
    /// Inference-time emission-feature dropout for BALD.
    pub dropout: f64,
    /// Training-time emission-feature dropout (the reference model trains
    /// with dropout); also the source of the round-to-round score
    /// fluctuation the history strategies exploit.
    pub train_dropout: f64,
    /// MC-dropout passes for BALD.
    pub mc_passes: usize,
    /// Fine-tune across fits (paper behaviour) or retrain from zero.
    pub warm_start: bool,
    /// Bootstrap committee size for QBC; 0 disables committee training.
    pub committee: usize,
    /// Epochs per committee member.
    pub committee_epochs: usize,
    /// Tag inventory (provides the span-F1 metric).
    pub scheme: TagScheme,
    /// Log-domain beam width for **scoring-only** pruned
    /// forward–backward (DESIGN.md §5.7). `None` (the default) keeps
    /// every strategy-scoring pass exact. `Some(δ)` prunes source
    /// states more than `δ` below each timestep's best forward score
    /// when computing `logZ`/entropy inside [`Model::eval_sample`];
    /// `|logZ_pruned − logZ| ≤ −(T−1)·ln(1 − L·e^{−δ})` for
    /// `L·e^{−δ} < 1` (L = label count, T = sentence length). Training,
    /// decoding and the span-F1 metric never use the beam.
    #[serde(default)]
    pub score_beam: Option<f64>,
}

impl Default for CrfConfig {
    fn default() -> Self {
        Self {
            n_features: 1 << 16,
            epochs: 8,
            lr: 0.3,
            l2: 1e-6,
            dropout: 0.2,
            train_dropout: 0.25,
            mc_passes: 8,
            warm_start: true,
            committee: 0,
            committee_epochs: 3,
            scheme: TagScheme::conll(),
            score_beam: None,
        }
    }
}

/// Reusable flat (row-major `t_len × n_labels`) lattice buffers for the
/// evaluation paths. `eval_sample` runs once per unlabeled sample per
/// round, and every call used to allocate fresh nested `Vec<Vec<f64>>`
/// lattices; one scratch per thread amortizes all of that away. The
/// flat layout performs the exact same floating-point operations in the
/// same order as the nested reference implementations (`forward`,
/// `backward`), so scores are bit-identical — see
/// `flat_eval_matches_nested_reference`.
#[derive(Debug, Default)]
struct LatticeScratch {
    /// Emission scores `e[t*l + y]`.
    e: Vec<f64>,
    /// Forward lattice `α[t*l + y]`.
    alpha: Vec<f64>,
    /// Backward lattice `β[t*l + y]`.
    beta: Vec<f64>,
    /// Per-cell logsumexp row (`n_labels` long).
    row: Vec<f64>,
    /// Viterbi score lattice.
    delta: Vec<f64>,
    /// Viterbi backpointers.
    back: Vec<u16>,
    /// Decoded tag buffer.
    tags: Vec<u16>,
    /// 2-best lattice columns (best, second) per label.
    best2: Vec<(f64, f64)>,
    next2: Vec<(f64, f64)>,
    /// Marginal row for the entropy accumulation.
    probs: Vec<f64>,
    /// BALD vote counts `votes[t*l + tag]`.
    votes: Vec<u32>,
    /// Prepared (bounds-filtered, f64-widened) features for the current
    /// sentence: indices, values, and per-token offsets (`poff[t]..
    /// poff[t+1]` is token `t`'s window). Every lattice pass over one
    /// sentence — exact fill, the BALD dropout fills, repeat Viterbi
    /// decodes — shares this one preparation.
    pidx: Vec<u32>,
    pval: Vec<f64>,
    poff: Vec<usize>,
    /// Transposed transitions `trans_t[y*l + p] = trans[p*l + y]`, so
    /// forward/Viterbi row fills read contiguous lanes.
    trans_t: Vec<f64>,
    /// Beam-active label sets per timestep (flattened + offsets).
    act: Vec<u16>,
    act_off: Vec<usize>,
}

thread_local! {
    static LATTICE: RefCell<LatticeScratch> = RefCell::new(LatticeScratch::default());
}

/// Borrow this thread's lattice scratch. Callees must not re-enter (the
/// public wrappers borrow once and hand `&mut LatticeScratch` down).
fn with_lattice<R>(f: impl FnOnce(&mut LatticeScratch) -> R) -> R {
    LATTICE.with(|cell| f(&mut cell.borrow_mut()))
}

/// The CRF model (paper Task 2 substrate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrfTagger {
    config: CrfConfig,
    n_labels: usize,
    /// Feature-major `n_features × n_labels` emission weights:
    /// `emit[idx*l + y]`. Feature-major puts all labels of one hashed
    /// feature in one contiguous (lane-friendly, cache-friendly) row,
    /// which is the layout every hot loop walks: emission fills and the
    /// sparse SGD updates both iterate features outer, labels inner.
    /// For any fixed `(t, y)` cell the accumulation still runs in
    /// feature order, so scores are bit-identical to the historical
    /// label-major layout.
    emit: Vec<f64>,
    /// `trans[prev * n_labels + cur]`.
    trans: Vec<f64>,
    start: Vec<f64>,
    end: Vec<f64>,
    /// Bootstrap committee members (empty unless `config.committee > 0`).
    committee: Vec<CrfTagger>,
}

impl CrfTagger {
    /// A fresh zero-weight tagger.
    pub fn new(config: CrfConfig) -> Self {
        let n_labels = config.scheme.n_labels();
        assert!(n_labels >= 2, "need at least two labels");
        assert!(
            (0.0..1.0).contains(&config.dropout),
            "dropout must be in [0, 1)"
        );
        let nf = config.n_features as usize;
        Self {
            emit: vec![0.0; n_labels * nf],
            trans: vec![0.0; n_labels * n_labels],
            start: vec![0.0; n_labels],
            end: vec![0.0; n_labels],
            n_labels,
            committee: Vec::new(),
            config,
        }
    }

    /// Minibatch size for the parallel SGD kernel: per-sentence
    /// gradients inside one minibatch are taken at the batch-start
    /// weights and applied as a sum. Part of the training semantics —
    /// must not depend on the thread count.
    const MINIBATCH: usize = 4;
    /// Sentences per parallel accumulation chunk (see
    /// [`crate::parallel::chunked_grads`]); fixed for determinism.
    const GRAD_CHUNK: usize = 1;

    /// The configuration in use.
    pub fn config(&self) -> &CrfConfig {
        &self.config
    }

    /// Number of labels.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// The contiguous per-feature weight row `emit[idx*l ..][..l]`.
    #[inline]
    fn emit_row(&self, idx: usize) -> &[f64] {
        &self.emit[idx * self.n_labels..(idx + 1) * self.n_labels]
    }

    /// Emission score matrix `E[t][y]` for a sentence — the nested
    /// reference implementation (tests, `marginals`, `nll`).
    fn emissions(&self, s: &Sentence) -> Vec<Vec<f64>> {
        let nf = self.config.n_features as usize;
        let l = self.n_labels;
        s.token_feats
            .iter()
            .map(|x| {
                let mut row = vec![0.0; l];
                for (idx, val) in x.iter() {
                    // Out-of-range hashed indices contribute zero.
                    if (idx as usize) < nf {
                        kernels::scalar::axpy(&mut row, self.emit_row(idx as usize), val as f64);
                    }
                }
                row
            })
            .collect()
    }

    /// Flat emission matrix `e[t*l + y]` into a reusable buffer.
    fn emissions_into(&self, s: &Sentence, e: &mut Vec<f64>) {
        let nf = self.config.n_features as usize;
        let l = self.n_labels;
        e.clear();
        e.resize(s.len() * l, 0.0);
        for (t, x) in s.token_feats.iter().enumerate() {
            let row = &mut e[t * l..(t + 1) * l];
            for (idx, val) in x.iter() {
                if (idx as usize) < nf {
                    kernels::axpy(row, self.emit_row(idx as usize), val as f64);
                }
            }
        }
    }

    /// Bounds-filter and f64-widen a sentence's features once, into
    /// flat per-token windows. All lattice passes over the sentence
    /// (exact fill + every BALD dropout fill) then share this single
    /// preparation instead of re-walking the `SparseVec`s.
    fn prepare_feats(
        &self,
        s: &Sentence,
        pidx: &mut Vec<u32>,
        pval: &mut Vec<f64>,
        poff: &mut Vec<usize>,
    ) {
        let nf = self.config.n_features as usize;
        pidx.clear();
        pval.clear();
        poff.clear();
        poff.push(0);
        for x in &s.token_feats {
            for (idx, val) in x.iter() {
                if (idx as usize) < nf {
                    pidx.push(idx);
                    pval.push(val as f64);
                }
            }
            poff.push(pidx.len());
        }
    }

    /// Flat emission fill from prepared features.
    fn fill_emissions(&self, pidx: &[u32], pval: &[f64], poff: &[usize], e: &mut Vec<f64>) {
        let l = self.n_labels;
        let t_len = poff.len() - 1;
        e.clear();
        e.resize(t_len * l, 0.0);
        for t in 0..t_len {
            let row = &mut e[t * l..(t + 1) * l];
            for k in poff[t]..poff[t + 1] {
                kernels::axpy(row, self.emit_row(pidx[k] as usize), pval[k]);
            }
        }
    }

    /// Flat emission fill under a random dropout mask, from prepared
    /// features. Consumes `rng` draws in the same order as the original
    /// implementation (one draw per in-range feature index).
    fn fill_emissions_dropout(
        &self,
        pidx: &[u32],
        pval: &[f64],
        poff: &[usize],
        rng: &mut ChaCha8Rng,
        e: &mut Vec<f64>,
    ) {
        let l = self.n_labels;
        let keep = 1.0 - self.config.dropout;
        let scale = 1.0 / keep;
        let t_len = poff.len() - 1;
        e.clear();
        e.resize(t_len * l, 0.0);
        for t in 0..t_len {
            let row = &mut e[t * l..(t + 1) * l];
            for k in poff[t]..poff[t + 1] {
                if rng.gen::<f64>() < keep {
                    kernels::axpy(row, self.emit_row(pidx[k] as usize), pval[k] * scale);
                }
            }
        }
    }

    /// Transposed transitions `trans_t[y*l + p] = trans[p*l + y]` for
    /// contiguous forward/Viterbi row fills. O(L²) copies — negligible
    /// next to one lattice pass.
    fn fill_trans_t(&self, trans_t: &mut Vec<f64>) {
        let l = self.n_labels;
        trans_t.clear();
        trans_t.resize(l * l, 0.0);
        for p in 0..l {
            for y in 0..l {
                trans_t[y * l + p] = self.trans[p * l + y];
            }
        }
    }

    /// Forward pass on a flat emission matrix; fills `alpha` and returns
    /// `logZ`. Same operations in the same order as [`Self::forward`]:
    /// the vectorized row fill `α[t−1][p] + trans[p][y]` produces the
    /// exact operands the scalar loop fed `logsumexp`, and the
    /// (order-sensitive) sum of exponentials stays scalar inside
    /// `logsumexp` itself.
    fn forward_flat(
        &self,
        e: &[f64],
        trans_t: &[f64],
        alpha: &mut Vec<f64>,
        row: &mut Vec<f64>,
    ) -> f64 {
        let l = self.n_labels;
        let t_len = e.len() / l;
        alpha.clear();
        alpha.resize(t_len * l, 0.0);
        row.clear();
        row.resize(l, 0.0);
        for y in 0..l {
            alpha[y] = self.start[y] + e[y];
        }
        for t in 1..t_len {
            let (prev, cur) = alpha.split_at_mut(t * l);
            let aprev = &prev[(t - 1) * l..];
            for y in 0..l {
                kernels::add2(row, aprev, &trans_t[y * l..(y + 1) * l]);
                cur[y] = logsumexp(row) + e[t * l + y];
            }
        }
        for y in 0..l {
            row[y] = alpha[(t_len - 1) * l + y] + self.end[y];
        }
        logsumexp(row)
    }

    /// Backward pass on a flat emission matrix; fills `beta`. The row
    /// fill keeps the reference association `(trans + e) + β`.
    fn backward_flat(&self, e: &[f64], beta: &mut Vec<f64>, row: &mut Vec<f64>) {
        let l = self.n_labels;
        let t_len = e.len() / l;
        beta.clear();
        beta.resize(t_len * l, 0.0);
        row.clear();
        row.resize(l, 0.0);
        beta[(t_len - 1) * l..].copy_from_slice(&self.end);
        for t in (0..t_len - 1).rev() {
            let (cur, next) = beta.split_at_mut((t + 1) * l);
            let bnext = &next[..l];
            let enext = &e[(t + 1) * l..(t + 2) * l];
            for y in 0..l {
                kernels::add3(row, &self.trans[y * l..(y + 1) * l], enext, bnext);
                cur[t * l + y] = logsumexp(row);
            }
        }
    }

    /// Viterbi on a flat emission matrix with reusable lattices; fills
    /// `tags` with the best path and returns its unnormalized score.
    /// The max-sum recursion vectorizes exactly: f64 max is associative
    /// and commutative for non-NaN scores, and the lane argmax keeps the
    /// scalar earliest-index tie-break.
    fn viterbi_flat(
        &self,
        e: &[f64],
        trans_t: &[f64],
        delta: &mut Vec<f64>,
        back: &mut Vec<u16>,
        tags: &mut Vec<u16>,
        row: &mut Vec<f64>,
    ) -> f64 {
        let l = self.n_labels;
        let t_len = e.len() / l;
        delta.clear();
        delta.resize(t_len * l, 0.0);
        back.clear();
        back.resize(t_len * l, 0);
        row.clear();
        row.resize(l, 0.0);
        for y in 0..l {
            delta[y] = self.start[y] + e[y];
        }
        for t in 1..t_len {
            let (prev, cur) = delta.split_at_mut(t * l);
            let dprev = &prev[(t - 1) * l..];
            for y in 0..l {
                kernels::add2(row, dprev, &trans_t[y * l..(y + 1) * l]);
                let (best, arg) = kernels::max_index(row);
                cur[y] = best + e[t * l + y];
                back[t * l + y] = arg as u16;
            }
        }
        kernels::add2(row, &delta[(t_len - 1) * l..], &self.end);
        let (best, mut cur) = kernels::max_index(row);
        tags.clear();
        tags.resize(t_len, 0);
        tags[t_len - 1] = cur as u16;
        for t in (1..t_len).rev() {
            cur = back[t * l + cur] as usize;
            tags[t - 1] = cur as u16;
        }
        best
    }

    /// 2-best Viterbi on a flat emission matrix with reusable columns.
    fn viterbi2_flat(
        &self,
        e: &[f64],
        delta: &mut Vec<(f64, f64)>,
        next: &mut Vec<(f64, f64)>,
    ) -> (f64, f64) {
        let l = self.n_labels;
        let t_len = e.len() / l;
        delta.clear();
        delta.resize(l, (f64::NEG_INFINITY, f64::NEG_INFINITY));
        for (y, d) in delta.iter_mut().enumerate() {
            d.0 = self.start[y] + e[y];
        }
        next.clear();
        next.resize(l, (f64::NEG_INFINITY, f64::NEG_INFINITY));
        for t in 1..t_len {
            for (y, n) in next.iter_mut().enumerate() {
                let (mut b1, mut b2) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for (p, d) in delta.iter().enumerate() {
                    let tr = self.trans[p * l + y];
                    for cand in [d.0 + tr, d.1 + tr] {
                        if cand > b1 {
                            b2 = b1;
                            b1 = cand;
                        } else if cand > b2 {
                            b2 = cand;
                        }
                    }
                }
                *n = (b1 + e[t * l + y], b2 + e[t * l + y]);
            }
            std::mem::swap(delta, next);
        }
        let (mut b1, mut b2) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (y, d) in delta.iter().enumerate() {
            for cand in [d.0 + self.end[y], d.1 + self.end[y]] {
                if cand > b1 {
                    b2 = b1;
                    b1 = cand;
                } else if cand > b2 {
                    b2 = cand;
                }
            }
        }
        (b1, b2)
    }

    /// Append the labels of `row` within `delta` of its maximum to
    /// `act`. With `delta = ∞` every (non-NaN) label stays active.
    fn prune_row(row: &[f64], delta: f64, act: &mut Vec<u16>) {
        let (m, _) = kernels::max_index(row);
        let thr = m - delta;
        for (y, &v) in row.iter().enumerate() {
            if v >= thr {
                act.push(y as u16);
            }
        }
    }

    /// Beam-pruned forward pass (scoring only — see
    /// [`CrfConfig::score_beam`]). Every `α[t][y]` cell is still
    /// computed, but the transition sum at step `t` runs over only the
    /// *source* labels within `delta` of step `t−1`'s best forward
    /// score; the per-step active sets are recorded in `act`/`act_off`
    /// for the matching backward pass. Dropping a source can only
    /// remove probability mass, so the returned `logZ` underestimates
    /// the exact one by at most `−(T−1)·ln(1 − L·e^{−δ})` nats (each
    /// step discards at most `L·e^{−δ}` of its relative mass). With
    /// `delta = ∞` nothing is pruned and every output is bit-identical
    /// to [`Self::forward_flat`].
    #[allow(clippy::too_many_arguments)]
    fn forward_beam(
        &self,
        e: &[f64],
        trans_t: &[f64],
        delta: f64,
        alpha: &mut Vec<f64>,
        row: &mut Vec<f64>,
        act: &mut Vec<u16>,
        act_off: &mut Vec<usize>,
    ) -> f64 {
        let l = self.n_labels;
        let t_len = e.len() / l;
        alpha.clear();
        alpha.resize(t_len * l, 0.0);
        act.clear();
        act_off.clear();
        act_off.push(0);
        row.clear();
        row.resize(l, 0.0);
        for y in 0..l {
            alpha[y] = self.start[y] + e[y];
        }
        Self::prune_row(&alpha[..l], delta, act);
        act_off.push(act.len());
        for t in 1..t_len {
            let (prev, cur) = alpha.split_at_mut(t * l);
            let aprev = &prev[(t - 1) * l..];
            let srcs = &act[act_off[t - 1]..act_off[t]];
            for y in 0..l {
                let ty = &trans_t[y * l..(y + 1) * l];
                row.clear();
                // Sources in index order: with a full active set this
                // reproduces the exact row, value for value.
                for &p in srcs {
                    row.push(aprev[p as usize] + ty[p as usize]);
                }
                cur[y] = logsumexp(row) + e[t * l + y];
            }
            let full = &alpha[t * l..(t + 1) * l];
            Self::prune_row(full, delta, act);
            act_off.push(act.len());
        }
        row.clear();
        row.resize(l, 0.0);
        for y in 0..l {
            row[y] = alpha[(t_len - 1) * l + y] + self.end[y];
        }
        logsumexp(row)
    }

    /// Backward pass restricted to the forward beam's per-step active
    /// sets. With full active sets it is bit-identical to
    /// [`Self::backward_flat`].
    fn backward_beam(
        &self,
        e: &[f64],
        beta: &mut Vec<f64>,
        row: &mut Vec<f64>,
        act: &[u16],
        act_off: &[usize],
    ) {
        let l = self.n_labels;
        let t_len = e.len() / l;
        beta.clear();
        beta.resize(t_len * l, 0.0);
        beta[(t_len - 1) * l..].copy_from_slice(&self.end);
        for t in (0..t_len - 1).rev() {
            let (cur, next) = beta.split_at_mut((t + 1) * l);
            let bnext = &next[..l];
            let enext = &e[(t + 1) * l..(t + 2) * l];
            let nexts = &act[act_off[t + 1]..act_off[t + 2]];
            for y in 0..l {
                let tr = &self.trans[y * l..(y + 1) * l];
                row.clear();
                for &n in nexts {
                    let n = n as usize;
                    row.push((tr[n] + enext[n]) + bnext[n]);
                }
                cur[t * l + y] = logsumexp(row);
            }
        }
    }

    /// Log-space forward pass; returns `(alpha, logZ)`.
    fn forward(&self, e: &[Vec<f64>]) -> (Vec<Vec<f64>>, f64) {
        let t_len = e.len();
        let l = self.n_labels;
        let mut alpha = vec![vec![0.0; l]; t_len];
        for y in 0..l {
            alpha[0][y] = self.start[y] + e[0][y];
        }
        let mut scratch = vec![0.0; l];
        for t in 1..t_len {
            for y in 0..l {
                for (p, s) in scratch.iter_mut().enumerate() {
                    *s = alpha[t - 1][p] + self.trans[p * l + y];
                }
                alpha[t][y] = logsumexp(&scratch) + e[t][y];
            }
        }
        let final_scores: Vec<f64> = (0..l).map(|y| alpha[t_len - 1][y] + self.end[y]).collect();
        let log_z = logsumexp(&final_scores);
        (alpha, log_z)
    }

    /// Log-space backward pass.
    fn backward(&self, e: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let t_len = e.len();
        let l = self.n_labels;
        let mut beta = vec![vec![0.0; l]; t_len];
        beta[t_len - 1].copy_from_slice(&self.end);
        let mut scratch = vec![0.0; l];
        for t in (0..t_len - 1).rev() {
            for y in 0..l {
                for (n, s) in scratch.iter_mut().enumerate() {
                    *s = self.trans[y * l + n] + e[t + 1][n] + beta[t + 1][n];
                }
                beta[t][y] = logsumexp(&scratch);
            }
        }
        beta
    }

    /// Per-token posterior marginals `γ_t(y)`.
    pub fn marginals(&self, s: &Sentence) -> Vec<Vec<f64>> {
        if s.is_empty() {
            return Vec::new();
        }
        let e = self.emissions(s);
        let (alpha, log_z) = self.forward(&e);
        let beta = self.backward(&e);
        alpha
            .iter()
            .zip(&beta)
            .map(|(a, b)| {
                a.iter()
                    .zip(b)
                    .map(|(&ai, &bi)| (ai + bi - log_z).exp())
                    .collect()
            })
            .collect()
    }

    /// Viterbi decoding: `(best tag sequence, unnormalized path score)`.
    pub fn viterbi(&self, s: &Sentence) -> (Vec<u16>, f64) {
        if s.is_empty() {
            return (Vec::new(), 0.0);
        }
        with_lattice(|ws| {
            let LatticeScratch {
                e,
                delta,
                back,
                tags,
                row,
                trans_t,
                ..
            } = ws;
            self.emissions_into(s, e);
            self.fill_trans_t(trans_t);
            let score = self.viterbi_flat(e, trans_t, delta, back, tags, row);
            (tags.clone(), score)
        })
    }

    /// 2-best Viterbi: scores of the best and second-best label paths.
    /// Standard k-best lattice recursion with k = 2: each `(t, y)` cell
    /// keeps its two highest-scoring prefixes. Returns `(best, second)`;
    /// `second` is `NEG_INFINITY` when only one path exists (single label).
    pub fn viterbi2(&self, s: &Sentence) -> (f64, f64) {
        if s.is_empty() {
            return (0.0, f64::NEG_INFINITY);
        }
        with_lattice(|ws| {
            let LatticeScratch {
                e, best2, next2, ..
            } = ws;
            self.emissions_into(s, e);
            self.viterbi2_flat(e, best2, next2)
        })
    }

    /// Sequence margin uncertainty: `1 − (P₁ − P₂)` where `P₁, P₂` are
    /// the normalized probabilities of the two best paths — the sequence
    /// analogue of top-2 margin sampling (Scheffer et al. 2001).
    pub fn sequence_margin(&self, s: &Sentence) -> f64 {
        if s.is_empty() {
            return 0.0;
        }
        with_lattice(|ws| {
            let LatticeScratch {
                e,
                alpha,
                row,
                best2,
                next2,
                trans_t,
                ..
            } = ws;
            self.emissions_into(s, e);
            self.fill_trans_t(trans_t);
            let log_z = self.forward_flat(e, trans_t, alpha, row);
            let (best, second) = self.viterbi2_flat(e, best2, next2);
            let p1 = (best - log_z).exp();
            let p2 = if second.is_finite() {
                (second - log_z).exp()
            } else {
                0.0
            };
            1.0 - (p1 - p2)
        })
    }

    /// Log partition function `ln Z(x)`, honoring
    /// [`CrfConfig::score_beam`]: exact when the beam is unset,
    /// beam-pruned (underestimating by at most the documented bound)
    /// when set. Exposed so the beam's error-bound and rank-stability
    /// properties can be tested against the exact oracle directly.
    pub fn log_partition(&self, s: &Sentence) -> f64 {
        if s.is_empty() {
            return 0.0;
        }
        with_lattice(|ws| {
            let LatticeScratch {
                e,
                alpha,
                row,
                trans_t,
                act,
                act_off,
                ..
            } = ws;
            self.emissions_into(s, e);
            self.fill_trans_t(trans_t);
            match self.config.score_beam {
                Some(delta) => self.forward_beam(e, trans_t, delta, alpha, row, act, act_off),
                None => self.forward_flat(e, trans_t, alpha, row),
            }
        })
    }

    /// Unnormalized score of a given path.
    fn path_score(&self, e: &[Vec<f64>], tags: &[u16]) -> f64 {
        let l = self.n_labels;
        let mut score = self.start[tags[0] as usize] + e[0][tags[0] as usize];
        for t in 1..tags.len() {
            score +=
                self.trans[tags[t - 1] as usize * l + tags[t] as usize] + e[t][tags[t] as usize];
        }
        score + self.end[*tags.last().expect("non-empty path") as usize]
    }

    /// Exact negative log-likelihood of `(s, tags)` — exposed for the
    /// gradient-check test.
    pub fn nll(&self, s: &Sentence, tags: &[u16]) -> f64 {
        assert_eq!(s.len(), tags.len(), "sentence/tags misaligned");
        if s.is_empty() {
            return 0.0;
        }
        let e = self.emissions(s);
        let (_, log_z) = self.forward(&e);
        log_z - self.path_score(&e, tags)
    }

    /// One SGD step on the exact NLL gradient of one sentence, with
    /// inverted dropout on the emission features. Training now runs
    /// through the minibatch kernel in [`Model::fit`]; this single-step
    /// form is retained as the reference implementation the
    /// gradient-check test differentiates.
    #[cfg_attr(not(test), allow(dead_code))]
    fn sgd_step(&mut self, s: &Sentence, tags: &[u16], lr: f64, l2: f64, rng: &mut ChaCha8Rng) {
        if s.is_empty() {
            return;
        }
        let l = self.n_labels;
        let nf = self.config.n_features as usize;
        // Sample one mask per token for this step; reuse it for the
        // forward pass and the gradient.
        let keep = 1.0 - self.config.train_dropout;
        let masked: Vec<Vec<(u32, f64)>> = s
            .token_feats
            .iter()
            .map(|x| {
                x.iter()
                    .filter(|&(idx, _)| (idx as usize) < nf)
                    .filter_map(|(idx, val)| {
                        if self.config.train_dropout == 0.0 || rng.gen::<f64>() < keep {
                            Some((idx, val as f64 / keep))
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();
        let e: Vec<Vec<f64>> = masked
            .iter()
            .map(|feats| {
                (0..l)
                    .map(|y| {
                        feats
                            .iter()
                            .map(|&(idx, v)| self.emit[idx as usize * l + y] * v)
                            .sum()
                    })
                    .collect()
            })
            .collect();
        let (alpha, log_z) = self.forward(&e);
        let beta = self.backward(&e);
        // Emission gradient: (γ_t(y) − δ) x_t, on the masked features.
        for (t, feats) in masked.iter().enumerate() {
            for y in 0..l {
                let gamma = (alpha[t][y] + beta[t][y] - log_z).exp();
                let g = gamma - if tags[t] as usize == y { 1.0 } else { 0.0 };
                if g.abs() < 1e-12 {
                    continue;
                }
                for &(idx, v) in feats {
                    let w = &mut self.emit[idx as usize * l + y];
                    *w -= lr * (g * v + l2 * *w);
                }
            }
        }
        // Transition gradient: ξ_t(p,y) − observed.
        for t in 0..s.len() - 1 {
            for p in 0..l {
                for y in 0..l {
                    let xi = (alpha[t][p] + self.trans[p * l + y] + e[t + 1][y] + beta[t + 1][y]
                        - log_z)
                        .exp();
                    let obs = if tags[t] as usize == p && tags[t + 1] as usize == y {
                        1.0
                    } else {
                        0.0
                    };
                    let w = &mut self.trans[p * l + y];
                    *w -= lr * ((xi - obs) + l2 * *w);
                }
            }
        }
        // Start/end gradients.
        for y in 0..l {
            let gamma0 = (alpha[0][y] + beta[0][y] - log_z).exp();
            self.start[y] -= lr * (gamma0 - if tags[0] as usize == y { 1.0 } else { 0.0 });
            let t_last = s.len() - 1;
            let gamma_t = (alpha[t_last][y] + beta[t_last][y] - log_z).exp();
            self.end[y] -= lr * (gamma_t - if tags[t_last] as usize == y { 1.0 } else { 0.0 });
        }
    }

    /// Committee disagreement for QBC: mean over tokens of the mean KL
    /// divergence of each member's marginal distribution from the
    /// committee mean. `None` if no committee was trained.
    pub fn qbc_kl(&self, s: &Sentence) -> Option<f64> {
        if self.committee.is_empty() || s.is_empty() {
            return if self.committee.is_empty() {
                None
            } else {
                Some(0.0)
            };
        }
        // Members compute forward–backward independently; the collect
        // preserves member order, so this is safe to fan out.
        let member_marginals: Vec<Vec<Vec<f64>>> =
            crate::parallel::map_items(self.committee.len(), |m| self.committee[m].marginals(s));
        let c = member_marginals.len() as f64;
        let l = self.n_labels;
        let mut acc = 0.0;
        for t in 0..s.len() {
            let mut avg = vec![0.0; l];
            for mm in &member_marginals {
                for (a, v) in avg.iter_mut().zip(&mm[t]) {
                    *a += v / c;
                }
            }
            let mut kl_sum = 0.0;
            for mm in &member_marginals {
                kl_sum += crate::math::kl_divergence(&mm[t], &avg);
            }
            acc += kl_sum / c;
        }
        Some(acc / s.len() as f64)
    }

    /// BALD via MC dropout: mean per-token Viterbi variation ratio.
    pub fn bald(&self, s: &Sentence, rng: &mut ChaCha8Rng) -> f64 {
        with_lattice(|ws| self.bald_with(s, rng, ws))
    }
}

/// Per-sentence gradient payload returned by the minibatch kernel:
/// flattened dropout-masked features (token `t`'s window is
/// `moff[t]..moff[t+1]` of `midx`/`mval`) plus the flat gradient
/// factors `g[t*l + y] = γ_t(y) − δ`.
#[derive(Default)]
struct SentGrad {
    midx: Vec<u32>,
    mval: Vec<f64>,
    moff: Vec<usize>,
    g: Vec<f64>,
}

impl CrfTagger {
    /// Gradient factors below this skip the emission-row update (and
    /// its L2 decay) — the historical sparse-update cutoff.
    const GRAD_EPS: f64 = 1e-12;

    /// BALD inner loop on caller-provided scratch: `mc_passes` dropout
    /// lattices and Viterbi decodes with zero per-pass allocation. All
    /// passes share one feature preparation and one transition
    /// transpose; only the masked emission fill differs per pass.
    fn bald_with(&self, s: &Sentence, rng: &mut ChaCha8Rng, ws: &mut LatticeScratch) -> f64 {
        if s.is_empty() {
            return 0.0;
        }
        let l = self.n_labels;
        let passes = self.config.mc_passes.max(2);
        let LatticeScratch {
            e,
            delta,
            back,
            tags,
            row,
            votes,
            pidx,
            pval,
            poff,
            trans_t,
            ..
        } = ws;
        self.prepare_feats(s, pidx, pval, poff);
        self.fill_trans_t(trans_t);
        votes.clear();
        votes.resize(s.len() * l, 0);
        for _ in 0..passes {
            self.fill_emissions_dropout(pidx, pval, poff, rng, e);
            self.viterbi_flat(e, trans_t, delta, back, tags, row);
            for (t, &tag) in tags.iter().enumerate() {
                votes[t * l + tag as usize] += 1;
            }
        }
        let mut acc = 0.0;
        for token_votes in votes.chunks(l) {
            let mode = token_votes.iter().copied().max().unwrap_or(0);
            acc += 1.0 - mode as f64 / passes as f64;
        }
        acc / s.len() as f64
    }
}

impl Model for CrfTagger {
    type Sample = Sentence;
    type Label = Vec<u16>;

    fn fit(&mut self, samples: &[&Sentence], labels: &[&Vec<u16>], rng: &mut ChaCha8Rng) {
        if samples.is_empty() {
            return;
        }
        let _span = span!(Level::Debug, "crf.fit", n = samples.len());
        if !self.config.warm_start {
            let nf = self.config.n_features as usize;
            self.emit = vec![0.0; self.n_labels * nf];
            self.trans = vec![0.0; self.n_labels * self.n_labels];
            self.start = vec![0.0; self.n_labels];
            self.end = vec![0.0; self.n_labels];
        }
        let nf = self.config.n_features as usize;
        let l = self.n_labels;
        let (lr, l2) = (self.config.lr, self.config.l2);
        let train_dropout = self.config.train_dropout;
        let keep = 1.0 - train_dropout;
        // Hoisted out of the epoch loop: bounds-filter and widen every
        // token's features once per fit instead of once per step.
        let feats: Vec<Vec<Vec<(u32, f64)>>> = samples
            .iter()
            .map(|s| {
                s.token_feats
                    .iter()
                    .map(|x| {
                        x.iter()
                            .filter(|&(idx, _)| (idx as usize) < nf)
                            .map(|(idx, val)| (idx, val as f64))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Dense accumulator layout: transitions ‖ start ‖ end.
        let dense_dim = l * l + 2 * l;
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..self.config.epochs {
            rand::seq::SliceRandom::shuffle(&mut order[..], rng);
            let epoch_seed: u64 = rng.gen();
            for (batch_no, batch) in order.chunks(Self::MINIBATCH).enumerate() {
                let base = batch_no * Self::MINIBATCH;
                let model = &*self;
                // Per-sentence gradients at the batch-start weights, in
                // parallel. Dropout masks come from per-sentence RNGs
                // derived from the serially-drawn epoch seed, so worker
                // threads never touch the driver stream.
                let (per_item, dense) = crate::parallel::chunked_grads(
                    batch.len(),
                    Self::GRAD_CHUNK,
                    dense_dim,
                    |j, acc| {
                        let i = batch[j];
                        let (s, tags) = (samples[i], labels[i]);
                        if s.is_empty() {
                            return SentGrad::default();
                        }
                        let mut srng = ChaCha8Rng::seed_from_u64(crate::parallel::derive_seed(
                            epoch_seed,
                            (base + j) as u64,
                        ));
                        // One mask per token, reused for the forward
                        // pass and the gradient. The mask draws run in
                        // feature order, matching the historical
                        // per-token filter.
                        let mut sg = SentGrad::default();
                        sg.moff.push(0);
                        for toks in &feats[i] {
                            for &(idx, v) in toks {
                                if train_dropout == 0.0 || srng.gen::<f64>() < keep {
                                    sg.midx.push(idx);
                                    sg.mval.push(v / keep);
                                }
                            }
                            sg.moff.push(sg.midx.len());
                        }
                        let t_len = s.len();
                        // Flat thread-local lattices replace the
                        // per-sentence nested allocations; the flat
                        // passes are bit-identical to the nested
                        // references (`flat_eval_matches_nested_reference`).
                        with_lattice(|ws| {
                            let LatticeScratch {
                                e,
                                alpha,
                                beta,
                                row,
                                trans_t,
                                ..
                            } = ws;
                            model.fill_emissions(&sg.midx, &sg.mval, &sg.moff, e);
                            model.fill_trans_t(trans_t);
                            let log_z = model.forward_flat(e, trans_t, alpha, row);
                            model.backward_flat(e, beta, row);
                            // Emission gradient factors γ_t(y) − δ; row 0
                            // and the last row double as the start/end
                            // gradients.
                            sg.g.resize(t_len * l, 0.0);
                            for t in 0..t_len {
                                let grow = &mut sg.g[t * l..(t + 1) * l];
                                kernels::add2(
                                    grow,
                                    &alpha[t * l..(t + 1) * l],
                                    &beta[t * l..(t + 1) * l],
                                );
                                for (y, gy) in grow.iter_mut().enumerate() {
                                    *gy = (*gy - log_z).exp()
                                        - if tags[t] as usize == y { 1.0 } else { 0.0 };
                                }
                            }
                            // Transition gradient ξ_t(p,y) − observed,
                            // with the L2 term at the batch-start weights
                            // so it folds into the order-fixed
                            // accumulator.
                            for t in 0..t_len - 1 {
                                let enext = &e[(t + 1) * l..(t + 2) * l];
                                let bnext = &beta[(t + 1) * l..(t + 2) * l];
                                for p in 0..l {
                                    let tr = &model.trans[p * l..(p + 1) * l];
                                    kernels::shift_add3_sub(
                                        row,
                                        alpha[t * l + p],
                                        tr,
                                        enext,
                                        bnext,
                                        log_z,
                                    );
                                    let accr = &mut acc[p * l..(p + 1) * l];
                                    for y in 0..l {
                                        let obs =
                                            if tags[t] as usize == p && tags[t + 1] as usize == y {
                                                1.0
                                            } else {
                                                0.0
                                            };
                                        accr[y] += (row[y].exp() - obs) + l2 * tr[y];
                                    }
                                }
                            }
                            for y in 0..l {
                                acc[l * l + y] += sg.g[y];
                                acc[l * l + l + y] += sg.g[(t_len - 1) * l + y];
                            }
                        });
                        sg
                    },
                );
                for (w, d) in self.trans.iter_mut().zip(&dense[..l * l]) {
                    *w -= lr * d;
                }
                for (w, d) in self.start.iter_mut().zip(&dense[l * l..l * l + l]) {
                    *w -= lr * d;
                }
                for (w, d) in self.end.iter_mut().zip(&dense[l * l + l..]) {
                    *w -= lr * d;
                }
                // Sparse emission updates in sentence order (serial, so
                // the L2 term sees deterministically-evolving weights).
                // Feature-major rows make each token's update walk
                // contiguous `l`-wide blocks; within one token every
                // `(feature, label)` cell is touched at most once, so
                // swapping the feature/label loop order leaves the final
                // weights bit-identical.
                for sg in &per_item {
                    let t_len = sg.moff.len().saturating_sub(1);
                    for t in 0..t_len {
                        let grow = &sg.g[t * l..(t + 1) * l];
                        for k in sg.moff[t]..sg.moff[t + 1] {
                            let idx = sg.midx[k] as usize;
                            kernels::sgd_row_update(
                                &mut self.emit[idx * l..(idx + 1) * l],
                                grow,
                                sg.mval[k],
                                lr,
                                l2,
                                Self::GRAD_EPS,
                            );
                        }
                    }
                }
            }
        }
        // Bootstrap committee for QBC (trained from scratch each fit).
        // Bootstrap indices and member seeds are drawn serially from the
        // driver stream; the independent members then train in parallel.
        let n = samples.len();
        let plans: Vec<(Vec<usize>, u64)> = (0..self.config.committee)
            .map(|_| {
                let boot: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                (boot, rng.gen())
            })
            .collect();
        let base_cfg = &self.config;
        self.committee = crate::parallel::map_items(plans.len(), |m| {
            let (boot, member_seed) = &plans[m];
            let mut member_cfg = base_cfg.clone();
            member_cfg.committee = 0;
            member_cfg.epochs = base_cfg.committee_epochs;
            member_cfg.warm_start = false;
            let mut member = CrfTagger::new(member_cfg);
            let boot_s: Vec<&Sentence> = boot.iter().map(|&i| samples[i]).collect();
            let boot_l: Vec<&Vec<u16>> = boot.iter().map(|&i| labels[i]).collect();
            member.fit(
                &boot_s,
                &boot_l,
                &mut ChaCha8Rng::seed_from_u64(*member_seed),
            );
            member
        });
    }

    fn eval_sample(&self, sample: &Sentence, caps: &EvalCaps, seed: u64) -> SampleEval {
        if sample.is_empty() {
            return SampleEval::default();
        }
        let l = self.n_labels;
        with_lattice(|ws| {
            let mut eval = {
                let LatticeScratch {
                    e,
                    alpha,
                    beta,
                    row,
                    delta,
                    back,
                    tags,
                    best2,
                    next2,
                    probs,
                    pidx,
                    pval,
                    poff,
                    trans_t,
                    act,
                    act_off,
                    ..
                } = &mut *ws;
                // One feature preparation + one emission fill shared by
                // every lattice pass below (forward, backward, Viterbi,
                // 2-best), and reused by the BALD dropout passes.
                self.prepare_feats(sample, pidx, pval, poff);
                self.fill_emissions(pidx, pval, poff, e);
                self.fill_trans_t(trans_t);
                let beam = self.config.score_beam;
                let log_z = match beam {
                    Some(d) => self.forward_beam(e, trans_t, d, alpha, row, act, act_off),
                    None => self.forward_flat(e, trans_t, alpha, row),
                };
                let best_score = self.viterbi_flat(e, trans_t, delta, back, tags, row);
                let best_logprob = best_score - log_z;

                // Mean per-token marginal entropy. Needs the backward
                // lattice, so both are gated on the entropy cap — LC
                // and MNLP strategies never pay for them.
                let entropy = if caps.entropy {
                    match beam {
                        Some(_) => self.backward_beam(e, beta, row, act, act_off),
                        None => self.backward_flat(e, beta, row),
                    }
                    let mut entropy = 0.0;
                    for t in 0..sample.len() {
                        probs.clear();
                        probs.extend(
                            (0..l).map(|y| (alpha[t * l + y] + beta[t * l + y] - log_z).exp()),
                        );
                        entropy += histal_core::eval::entropy_of(probs);
                    }
                    entropy / sample.len() as f64
                } else {
                    0.0
                };

                let mut eval = SampleEval {
                    probs: Vec::new(),
                    entropy,
                    least_confidence: 1.0 - best_logprob.exp(),
                    // Top-2 path margin (sequence analogue of margin
                    // sampling); 2-best Viterbi costs a second lattice
                    // pass, so it is gated. Reuses the emission matrix
                    // already in scratch.
                    margin: if caps.margin {
                        let (_, second) = self.viterbi2_flat(e, best2, next2);
                        let p1 = best_logprob.exp();
                        let p2 = if second.is_finite() {
                            (second - log_z).exp()
                        } else {
                            0.0
                        };
                        Some(1.0 - (p1 - p2))
                    } else {
                        None
                    },
                    ..Default::default()
                };
                if caps.mnlp {
                    // Eq. 13 as an uncertainty: −(1/n) log P(ŷ|x) ≥ 0.
                    eval.mnlp = Some(-best_logprob / sample.len() as f64);
                }
                eval
            };
            if caps.bald {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                eval.bald = Some(self.bald_with(sample, &mut rng, ws));
            }
            if caps.qbc {
                // Committee members allocate their own lattices inside
                // `marginals` (the nested reference path), so this does
                // not re-enter the thread-local scratch.
                eval.qbc_kl = self.qbc_kl(sample);
            }
            if caps.egl || caps.egl_word {
                // Gradient-length strategies are not implemented for the
                // CRF substrate (the paper only runs LC/MNLP/BALD-family
                // strategies on NER); the fields remain None and the
                // strategy surfaces a MissingCapability error.
            }
            eval
        })
    }

    fn metric(&self, samples: &[&Sentence], labels: &[&Vec<u16>]) -> f64 {
        let _span = span!(Level::Debug, "crf.metric", n = samples.len());
        let scheme = &self.config.scheme;
        let pred_spans: Vec<Vec<(usize, usize, usize)>> = samples
            .iter()
            .map(|s| scheme.decode_spans(&self.viterbi(s).0))
            .collect();
        let gold_spans: Vec<Vec<(usize, usize, usize)>> =
            labels.iter().map(|l| scheme.decode_spans(l)).collect();
        span_f1(&pred_spans, &gold_spans).f1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_core::tags::Position;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Tiny scheme: one entity type → 5 labels.
    fn tiny_config() -> CrfConfig {
        CrfConfig {
            n_features: 1 << 10,
            epochs: 10,
            mc_passes: 6,
            train_dropout: 0.0,
            scheme: TagScheme::new(["X"]),
            ..Default::default()
        }
    }

    fn sent(tokens: &[&str]) -> Sentence {
        let toks: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        Sentence::featurize(&toks, &FeatureHasher::new(1 << 10))
    }

    /// Enumerate all paths to brute-force the partition function.
    fn brute_force_logz(m: &CrfTagger, s: &Sentence) -> f64 {
        let e = m.emissions(s);
        let l = m.n_labels();
        let t_len = s.len();
        let mut scores = Vec::new();
        let n_paths = l.pow(t_len as u32);
        for code in 0..n_paths {
            let mut c = code;
            let tags: Vec<u16> = (0..t_len)
                .map(|_| {
                    let y = (c % l) as u16;
                    c /= l;
                    y
                })
                .collect();
            scores.push(m.path_score(&e, &tags));
        }
        logsumexp(&scores)
    }

    fn randomize(m: &mut CrfTagger, seed: u64) {
        let mut r = rng(seed);
        for w in m.emit.iter_mut().take(4096) {
            *w = r.gen_range(-1.0..1.0);
        }
        for w in m.trans.iter_mut() {
            *w = r.gen_range(-1.0..1.0);
        }
        for w in m.start.iter_mut().chain(m.end.iter_mut()) {
            *w = r.gen_range(-1.0..1.0);
        }
    }

    #[test]
    fn forward_matches_brute_force() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 1);
        let s = sent(&["a", "b", "c"]);
        let e = m.emissions(&s);
        let (_, log_z) = m.forward(&e);
        let brute = brute_force_logz(&m, &s);
        assert!((log_z - brute).abs() < 1e-9, "{log_z} vs {brute}");
    }

    #[test]
    fn marginals_sum_to_one_and_match_brute_force() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 2);
        let s = sent(&["x", "y"]);
        let marg = m.marginals(&s);
        for row in &marg {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // Brute-force marginal of label 0 at t=0.
        let e = m.emissions(&s);
        let l = m.n_labels();
        let (mut num, mut all) = (Vec::new(), Vec::new());
        for y0 in 0..l {
            for y1 in 0..l {
                let score = m.path_score(&e, &[y0 as u16, y1 as u16]);
                all.push(score);
                if y0 == 0 {
                    num.push(score);
                }
            }
        }
        let expected = (logsumexp(&num) - logsumexp(&all)).exp();
        assert!((marg[0][0] - expected).abs() < 1e-9);
    }

    #[test]
    fn viterbi_matches_brute_force() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 3);
        let s = sent(&["p", "q", "r"]);
        let e = m.emissions(&s);
        let (tags, score) = m.viterbi(&s);
        // Brute force.
        let l = m.n_labels();
        let mut best = f64::NEG_INFINITY;
        let mut best_tags = Vec::new();
        for code in 0..l.pow(3) {
            let mut c = code;
            let path: Vec<u16> = (0..3)
                .map(|_| {
                    let y = (c % l) as u16;
                    c /= l;
                    y
                })
                .collect();
            let v = m.path_score(&e, &path);
            if v > best {
                best = v;
                best_tags = path;
            }
        }
        assert!((score - best).abs() < 1e-9);
        assert_eq!(tags, best_tags);
    }

    #[test]
    fn nll_gradient_check_on_transitions() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 4);
        let s = sent(&["m", "n"]);
        let tags = vec![1u16, 2u16];
        // Analytic gradient on trans[1][2]: one sgd_step with lr encodes
        // −lr·grad; recover grad by differencing weights (l2 = 0).
        let l = m.n_labels();
        let before = m.trans[1 * l + 2];
        let mut stepped = m.clone();
        stepped.sgd_step(&s, &tags, 1e-3, 0.0, &mut rng(0));
        let analytic = (before - stepped.trans[1 * l + 2]) / 1e-3;
        // Numeric gradient.
        let eps = 1e-6;
        let mut plus = m.clone();
        plus.trans[1 * l + 2] += eps;
        let mut minus = m.clone();
        minus.trans[1 * l + 2] -= eps;
        let numeric = (plus.nll(&s, &tags) - minus.nll(&s, &tags)) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-4,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn learns_simple_tagging_pattern() {
        // "ent" tokens are single-token entities, everything else O.
        let scheme = TagScheme::new(["X"]);
        let s_tag = scheme.tag(Position::S, 0);
        let mut sentences = Vec::new();
        let mut tag_seqs = Vec::new();
        for i in 0..30 {
            let filler = format!("w{i}");
            let toks = [filler.as_str(), "ent", "other"];
            sentences.push(sent(&toks));
            tag_seqs.push(vec![0u16, s_tag, 0u16]);
        }
        let mut m = CrfTagger::new(tiny_config());
        let s_refs: Vec<&Sentence> = sentences.iter().collect();
        let l_refs: Vec<&Vec<u16>> = tag_seqs.iter().collect();
        m.fit(&s_refs, &l_refs, &mut rng(5));
        let (tags, _) = m.viterbi(&sent(&["w99", "ent", "other"]));
        assert_eq!(tags[1], s_tag, "entity token must be tagged S-X: {tags:?}");
        assert_eq!(tags[0], 0);
        assert_eq!(tags[2], 0);
        let f1 = m.metric(&s_refs, &l_refs);
        assert!(f1 > 0.9, "training F1 {f1}");
    }

    #[test]
    fn dropout_training_still_learns() {
        let scheme = TagScheme::new(["X"]);
        let s_tag = scheme.tag(Position::S, 0);
        let mut sentences = Vec::new();
        let mut tag_seqs = Vec::new();
        for i in 0..30 {
            let filler = format!("w{i}");
            let toks = [filler.as_str(), "ent", "other"];
            sentences.push(sent(&toks));
            tag_seqs.push(vec![0u16, s_tag, 0u16]);
        }
        let mut cfg = tiny_config();
        cfg.train_dropout = 0.25;
        let mut m = CrfTagger::new(cfg);
        let s_refs: Vec<&Sentence> = sentences.iter().collect();
        let l_refs: Vec<&Vec<u16>> = tag_seqs.iter().collect();
        m.fit(&s_refs, &l_refs, &mut rng(15));
        let f1 = m.metric(&s_refs, &l_refs);
        assert!(f1 > 0.8, "dropout-trained F1 {f1}");
    }

    #[test]
    fn mnlp_normalizes_length_bias() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 6);
        let caps = EvalCaps {
            mnlp: true,
            ..Default::default()
        };
        let short = m.eval_sample(&sent(&["a", "b"]), &caps, 0);
        let long = m.eval_sample(&sent(&["a", "b", "a", "b", "a", "b", "a", "b"]), &caps, 0);
        // LC grows with length (P(best path) shrinks multiplicatively)…
        assert!(long.least_confidence >= short.least_confidence - 1e-9);
        // …while MNLP is per-token and must stay the same order of magnitude.
        let long_mnlp = long
            .mnlp
            .expect("eval_sample must set mnlp for the long sentence when EvalCaps requests it");
        let short_mnlp = short
            .mnlp
            .expect("eval_sample must set mnlp for the short sentence when EvalCaps requests it");
        let ratio = long_mnlp / short_mnlp.max(1e-9);
        assert!(ratio < 4.0, "MNLP still length-biased: ratio {ratio}");
    }

    #[test]
    fn empty_sentence_is_safe() {
        let m = CrfTagger::new(tiny_config());
        let empty = Sentence::default();
        let (tags, score) = m.viterbi(&empty);
        assert!(tags.is_empty());
        assert_eq!(score, 0.0);
        let eval = m.eval_sample(
            &empty,
            &EvalCaps {
                mnlp: true,
                bald: true,
                ..Default::default()
            },
            0,
        );
        assert_eq!(eval.entropy, 0.0);
        assert!(m.marginals(&empty).is_empty());
    }

    #[test]
    fn bald_deterministic_per_seed_and_bounded() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 7);
        let s = sent(&["u", "v", "w"]);
        let a = m.bald(&s, &mut rng(42));
        let b = m.bald(&s, &mut rng(42));
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn viterbi2_matches_brute_force() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 21);
        let s = sent(&["a", "b", "c"]);
        let e = m.emissions(&s);
        let l = m.n_labels();
        let mut scores = Vec::new();
        for code in 0..l.pow(3) {
            let mut c = code;
            let path: Vec<u16> = (0..3)
                .map(|_| {
                    let y = (c % l) as u16;
                    c /= l;
                    y
                })
                .collect();
            scores.push(m.path_score(&e, &path));
        }
        scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let (b1, b2) = m.viterbi2(&s);
        assert!((b1 - scores[0]).abs() < 1e-9, "{b1} vs {}", scores[0]);
        assert!((b2 - scores[1]).abs() < 1e-9, "{b2} vs {}", scores[1]);
    }

    #[test]
    fn sequence_margin_in_unit_interval_and_in_eval() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 22);
        let s = sent(&["p", "q"]);
        let margin = m.sequence_margin(&s);
        assert!((0.0..=1.0 + 1e-9).contains(&margin), "margin {margin}");
        let caps = EvalCaps {
            margin: true,
            ..Default::default()
        };
        let eval = m.eval_sample(&s, &caps, 0);
        assert!((eval.margin.unwrap() - margin).abs() < 1e-9);
        // Not computed unless requested (it costs a second lattice pass).
        assert!(m.eval_sample(&s, &EvalCaps::default(), 0).margin.is_none());
    }

    #[test]
    fn qbc_requires_committee() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 23);
        assert!(m.qbc_kl(&sent(&["x"])).is_none());
        let caps = EvalCaps {
            qbc: true,
            ..Default::default()
        };
        assert!(m.eval_sample(&sent(&["x"]), &caps, 0).qbc_kl.is_none());
    }

    #[test]
    fn qbc_with_committee_is_nonnegative() {
        let scheme = TagScheme::new(["X"]);
        let s_tag = scheme.tag(Position::S, 0);
        let mut sentences = Vec::new();
        let mut tag_seqs = Vec::new();
        for i in 0..12 {
            let filler = format!("w{i}");
            sentences.push(sent(&[filler.as_str(), "ent"]));
            tag_seqs.push(vec![0u16, s_tag]);
        }
        let mut cfg = tiny_config();
        cfg.committee = 3;
        cfg.committee_epochs = 2;
        let mut m = CrfTagger::new(cfg);
        let s_refs: Vec<&Sentence> = sentences.iter().collect();
        let l_refs: Vec<&Vec<u16>> = tag_seqs.iter().collect();
        m.fit(&s_refs, &l_refs, &mut rng(24));
        let kl = m.qbc_kl(&sent(&["w99", "ent"])).unwrap();
        assert!(kl >= 0.0 && kl.is_finite());
        // Determinism via eval_sample seed path.
        let caps = EvalCaps {
            qbc: true,
            ..Default::default()
        };
        let a = m.eval_sample(&sent(&["zz"]), &caps, 5);
        let b = m.eval_sample(&sent(&["zz"]), &caps, 5);
        assert_eq!(a.qbc_kl, b.qbc_kl);
    }

    #[test]
    fn flat_eval_matches_nested_reference() {
        let mut m = CrfTagger::new(tiny_config());
        randomize(&mut m, 31);
        let s = sent(&["alpha", "Beta", "g4mma"]);
        let l = m.n_labels();
        let e_nested = m.emissions(&s);
        let (alpha_n, log_z_n) = m.forward(&e_nested);
        let beta_n = m.backward(&e_nested);

        let (mut e, mut alpha, mut beta, mut row) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        m.emissions_into(&s, &mut e);
        for (t, erow) in e_nested.iter().enumerate() {
            for (y, v) in erow.iter().enumerate() {
                assert_eq!(v.to_bits(), e[t * l + y].to_bits());
            }
        }
        let mut trans_t = Vec::new();
        m.fill_trans_t(&mut trans_t);
        let log_z = m.forward_flat(&e, &trans_t, &mut alpha, &mut row);
        assert_eq!(log_z.to_bits(), log_z_n.to_bits());
        m.backward_flat(&e, &mut beta, &mut row);
        for t in 0..s.len() {
            for y in 0..l {
                assert_eq!(alpha_n[t][y].to_bits(), alpha[t * l + y].to_bits());
                assert_eq!(beta_n[t][y].to_bits(), beta[t * l + y].to_bits());
            }
        }
        // Scratch reuse is stateless: a second evaluation of a different,
        // shorter sentence through the same public entry points matches a
        // fresh model's answer.
        let short = sent(&["x"]);
        let fresh = m.clone();
        let a = m.eval_sample(
            &short,
            &EvalCaps {
                margin: true,
                mnlp: true,
                bald: true,
                entropy: true,
                ..Default::default()
            },
            9,
        );
        let b = fresh.eval_sample(
            &short,
            &EvalCaps {
                margin: true,
                mnlp: true,
                bald: true,
                entropy: true,
                ..Default::default()
            },
            9,
        );
        assert_eq!(a.entropy.to_bits(), b.entropy.to_bits());
        assert_eq!(a.least_confidence.to_bits(), b.least_confidence.to_bits());
        assert_eq!(a.margin, b.margin);
        assert_eq!(a.bald, b.bald);
    }

    #[test]
    fn egl_caps_left_unset_for_crf() {
        let m = CrfTagger::new(tiny_config());
        let caps = EvalCaps {
            egl: true,
            ..Default::default()
        };
        let eval = m.eval_sample(&sent(&["a"]), &caps, 0);
        assert!(eval.egl.is_none());
    }
}

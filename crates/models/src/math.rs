//! Shared numerical kernels.
//!
//! The max pass of both reductions runs through the lane kernels
//! ([`crate::kernels::max_index`]); f64 max is associative and
//! commutative on non-NaN inputs, so the lane-parallel reduction is
//! bit-identical to the sequential fold it replaces. The sum of exps is
//! *not* reassociable and stays a strict left-to-right scalar loop.

/// Numerically stable softmax of `logits`, in place.
pub fn softmax_inplace(logits: &mut [f64]) {
    if logits.is_empty() {
        return;
    }
    let (max, _) = crate::kernels::max_index(logits);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in logits.iter_mut() {
        *v /= sum;
    }
}

/// Numerically stable `ln Σ exp(xs)`.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let (max, _) = crate::kernels::max_index(xs);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// KL divergence `D(p || q)` in nats; terms with `p_i = 0` contribute 0,
/// and `q` is floored at `1e-12` to avoid infinities from sampling noise.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    p.iter()
        .zip(q)
        .filter(|(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| pi * (pi / qi.max(1e-12)).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0, 1001.0];
        softmax_inplace(&mut a);
        let mut b = vec![0.0, 1.0];
        softmax_inplace(&mut b);
        assert!((a[0] - b[0]).abs() < 1e-12);
        assert!(a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut v: Vec<f64> = vec![];
        softmax_inplace(&mut v);
    }

    #[test]
    fn logsumexp_matches_naive_when_safe() {
        let xs = [0.5, -0.2, 1.3];
        let naive = xs.iter().map(|x: &f64| x.exp()).sum::<f64>().ln();
        assert!((logsumexp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_handles_large_values() {
        let v = logsumexp(&[1e4, 1e4]);
        assert!((v - (1e4 + (2f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn logsumexp_empty_is_neg_inf() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.3, 0.7];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_and_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let pq = kl_divergence(&p, &q);
        let qp = kl_divergence(&q, &p);
        assert!(pq > 0.0 && qp > 0.0);
        assert!((pq - qp).abs() > 1e-6);
    }

    #[test]
    fn kl_tolerates_zero_q_via_floor() {
        let v = kl_divergence(&[1.0, 0.0], &[0.0, 1.0]);
        assert!(v.is_finite() && v > 0.0);
    }
}

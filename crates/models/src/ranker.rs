//! Active learning for document ranking: a LambdaMART-backed
//! [`Model`] whose samples are whole query groups.
//!
//! The paper's introduction counts "document ranking in information
//! retrieval" among active learning's applications (Silva et al. 2016,
//! Li & de Rijke 2017, Long et al. 2015). This adapter makes the
//! framework's third task family concrete: the pool is a set of
//! *queries*, annotating a sample means grading all of a query's
//! documents, and the model is the workspace's own LambdaMART.
//!
//! Ranking uncertainty is expressed through the distribution
//! `softmax(document scores)` — "which document would the current model
//! put first?" A peaked distribution means a confident ranking; a flat
//! one means the query would teach the ranker a lot. Entropy / LC /
//! margin and every history wrapper then apply unchanged.

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use histal_core::eval::{EvalCaps, SampleEval};
use histal_core::model::Model;
use histal_ltr::{
    ndcg_of_ranking, LambdaMart, LambdaMartConfig, QueryGroup, Ranker, RankingDataset,
};

use crate::math::softmax_inplace;

/// Hyper-parameters for [`RankingModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankingModelConfig {
    /// LambdaMART training parameters.
    pub lambdamart: LambdaMartConfig,
    /// NDCG truncation for the evaluation metric (0 = full group).
    pub metric_k: usize,
    /// Temperature of the top-document softmax (higher = sharper).
    pub temperature: f64,
}

impl Default for RankingModelConfig {
    fn default() -> Self {
        Self {
            lambdamart: LambdaMartConfig {
                n_trees: 30,
                ..Default::default()
            },
            metric_k: 10,
            temperature: 3.0,
        }
    }
}

/// A LambdaMART ranking model for query-level active learning.
///
/// `Sample` is a query's document-feature matrix; `Label` is its graded
/// relevance vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankingModel {
    config: RankingModelConfig,
    model: Option<LambdaMart>,
}

impl RankingModel {
    /// A fresh (untrained) ranking model.
    pub fn new(config: RankingModelConfig) -> Self {
        assert!(config.temperature > 0.0, "temperature must be positive");
        Self {
            config,
            model: None,
        }
    }

    /// Document scores for one query (all zeros before training).
    pub fn scores(&self, query: &[Vec<f64>]) -> Vec<f64> {
        match &self.model {
            Some(m) => query.iter().map(|row| m.score(row)).collect(),
            None => vec![0.0; query.len()],
        }
    }

    /// The "which document ranks first" distribution.
    pub fn top_doc_distribution(&self, query: &[Vec<f64>]) -> Vec<f64> {
        let mut s = self.scores(query);
        for v in s.iter_mut() {
            *v *= self.config.temperature;
        }
        softmax_inplace(&mut s);
        s
    }
}

impl Model for RankingModel {
    type Sample = Vec<Vec<f64>>;
    type Label = Vec<f64>;

    fn fit(&mut self, samples: &[&Vec<Vec<f64>>], labels: &[&Vec<f64>], _rng: &mut ChaCha8Rng) {
        let mut dataset = RankingDataset::new();
        for (features, relevance) in samples.iter().zip(labels) {
            dataset.push(QueryGroup::new((*features).clone(), (*relevance).clone()));
        }
        // LambdaMART training is deterministic given the dataset.
        self.model = Some(LambdaMart::fit(&dataset, &self.config.lambdamart));
    }

    fn eval_sample(&self, sample: &Vec<Vec<f64>>, _caps: &EvalCaps, _seed: u64) -> SampleEval {
        SampleEval::from_probs(self.top_doc_distribution(sample))
    }

    fn metric(&self, samples: &[&Vec<Vec<f64>>], labels: &[&Vec<f64>]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let k = self.config.metric_k;
        let mut acc = 0.0;
        for (features, relevance) in samples.iter().zip(labels) {
            let scores = self.scores(features);
            let k = if k == 0 { scores.len() } else { k };
            acc += ndcg_of_ranking(&scores, relevance, k);
        }
        acc / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histal_data::{LtrDataset, LtrSpec};
    use rand::SeedableRng;

    fn dataset(n: usize, seed: u64) -> LtrDataset {
        LtrDataset::generate(&LtrSpec {
            n_queries: n,
            seed,
            ..Default::default()
        })
    }

    fn fit_on(model: &mut RankingModel, d: &LtrDataset) {
        let s: Vec<&Vec<Vec<f64>>> = d.queries.iter().map(|q| &q.features).collect();
        let l: Vec<&Vec<f64>> = d.queries.iter().map(|q| &q.relevance).collect();
        model.fit(&s, &l, &mut ChaCha8Rng::seed_from_u64(1));
    }

    #[test]
    fn untrained_model_is_uniform_and_scoreless() {
        let m = RankingModel::new(RankingModelConfig::default());
        let q = vec![vec![0.1; 12], vec![0.9; 12]];
        assert_eq!(m.scores(&q), vec![0.0, 0.0]);
        let p = m.top_doc_distribution(&q);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn training_improves_ndcg() {
        let train = dataset(150, 1);
        let test = dataset(50, 2);
        let mut m = RankingModel::new(RankingModelConfig::default());
        let ts: Vec<&Vec<Vec<f64>>> = test.queries.iter().map(|q| &q.features).collect();
        let tl: Vec<&Vec<f64>> = test.queries.iter().map(|q| &q.relevance).collect();
        let before = m.metric(&ts, &tl);
        fit_on(&mut m, &train);
        let after = m.metric(&ts, &tl);
        assert!(
            after > before + 0.05,
            "NDCG before {before:.3} after {after:.3}"
        );
        assert!(after > 0.8, "trained NDCG {after:.3}");
    }

    #[test]
    fn eval_distribution_is_simplex() {
        let train = dataset(80, 3);
        let mut m = RankingModel::new(RankingModelConfig::default());
        fit_on(&mut m, &train);
        let e = m.eval_sample(&train.queries[0].features, &EvalCaps::default(), 0);
        assert!((e.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(e.entropy > 0.0);
        assert!(e.margin.is_some());
    }

    #[test]
    fn confident_queries_have_lower_entropy() {
        let train = dataset(200, 4);
        let mut m = RankingModel::new(RankingModelConfig::default());
        fit_on(&mut m, &train);
        // A query with one clear winner vs. one with near-ties: construct
        // directly in latent-feature space.
        let clear = vec![vec![0.95; 12], vec![0.05; 12], vec![0.04; 12]];
        let tied = vec![vec![0.5; 12], vec![0.5; 12], vec![0.5; 12]];
        let e_clear = m.eval_sample(&clear, &EvalCaps::default(), 0).entropy;
        let e_tied = m.eval_sample(&tied, &EvalCaps::default(), 0).entropy;
        assert!(e_tied > e_clear, "tied {e_tied:.3} vs clear {e_clear:.3}");
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn zero_temperature_panics() {
        let _ = RankingModel::new(RankingModelConfig {
            temperature: 0.0,
            ..Default::default()
        });
    }
}

//! # histal-obs — observability substrate for the histal workspace
//!
//! Hand-rolled, zero-external-dependency observability in the same
//! spirit as the workspace's vendored `rayon`/`serde` shims: the API
//! shapes follow the `tracing` / `metrics` ecosystems closely enough to
//! be familiar, but everything here is self-contained and deterministic.
//!
//! Three layers, each usable on its own:
//!
//! * [`trace`] — a structured-tracing facade. `span!` / `event!` macros
//!   register a static [`trace::Callsite`] per expansion and dispatch to
//!   a pluggable [`trace::Subscriber`]. When no subscriber is installed
//!   the macros cost one relaxed atomic load and never evaluate their
//!   field expressions, so instrumented hot loops stay hot.
//! * [`metrics`] — a registry of counters, gauges, and HDR-style
//!   log-bucket histograms. [`metrics::ShardedMetrics`] gives each
//!   parallel task its own shard by *task index* and merges shards in
//!   index order, so aggregate metrics are identical regardless of how
//!   the thread pool interleaved the work.
//! * [`journal`] — a crash-safe JSONL run journal: one flushed line per
//!   record, and a reader that tolerates (and repairs) a truncated
//!   crash-tail line. The experiment harness uses it to checkpoint
//!   every grid cell and resume interrupted runs.
//!
//! ## Quick start
//!
//! ```
//! use histal_obs::{span, event, trace::{CollectingSubscriber, Level}};
//! use std::sync::Arc;
//!
//! let sub = Arc::new(CollectingSubscriber::new());
//! let _guard = histal_obs::trace::subscriber_scope(sub.clone());
//! {
//!     let _span = span!(Level::Info, "demo.work", items = 3usize);
//!     event!(Level::Debug, "demo.step", step = 1usize);
//! }
//! assert!(sub.count("demo.work") >= 1);
//! ```

pub mod journal;
pub mod metrics;
pub mod trace;

pub use journal::{Journal, JournalReader};
pub use metrics::{LogHistogram, MetricValue, MetricsRegistry, ShardedMetrics};
pub use trace::{
    set_subscriber, subscriber_scope, CollectingSubscriber, Level, Metadata, NoopSubscriber, Span,
    SpanId, StderrSubscriber, Subscriber,
};

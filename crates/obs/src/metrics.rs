//! Metrics: counters, gauges, and HDR-style log-bucket histograms, with
//! deterministic cross-worker aggregation.
//!
//! A [`MetricsRegistry`] is a name-keyed store (sorted map, so snapshots
//! iterate in one canonical order). For parallel sections the harness
//! hands each `rayon::run_indexed` task its own shard of a
//! [`ShardedMetrics`]; [`ShardedMetrics::merge`] folds the shards in
//! *index order*, so the merged registry is byte-identical at any thread
//! count — the same argument the workspace's parallel kernels use
//! (fixed partition + fixed combine order).
//!
//! Histograms use logarithmic buckets with linear sub-buckets
//! (HDR-histogram style): values within a power of two land in one of
//! `SUBBUCKETS/2` equal slices, giving a bounded relative error of
//! `2/SUBBUCKETS` (25 % at the default width) at every magnitude while
//! storing only a few hundred counters.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use serde::Serialize;

/// Sub-bucket granularity constant: values below it are binned exactly,
/// and each octave above it splits into `SUBBUCKETS/2` linear slices.
pub const SUBBUCKETS: usize = 8;
const OCTAVES: usize = 64;
const BUCKETS: usize = OCTAVES * SUBBUCKETS;

/// Log-bucket histogram over `u64` samples (typically microseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// Non-empty buckets only, as `(bucket_index, count)` sorted by index.
    buckets: BTreeMap<usize, u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact sum of all samples (for exact means).
    sum: u64,
    /// Largest sample seen.
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl Serialize for LogHistogram {
    /// Serialized as summary stats plus non-empty `[bucket_floor, count]`
    /// pairs — the vendored serde has no map-with-integer-keys impl, and
    /// the floor is more useful in reports than the raw bucket index.
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .map(|(&b, &n)| Value::Seq(vec![Value::U64(bucket_floor(b)), Value::U64(n)]))
            .collect();
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::U64(self.sum)),
            ("max".to_string(), Value::U64(self.max)),
            ("mean".to_string(), Value::F64(self.mean())),
            ("p50".to_string(), Value::U64(self.quantile(0.5))),
            ("p99".to_string(), Value::U64(self.quantile(0.99))),
            ("buckets".to_string(), Value::Seq(buckets)),
        ])
    }
}

/// Bucket index of a value: octave (position of the highest set bit) ×
/// SUBBUCKETS + linear position within the octave.
fn bucket_of(value: u64) -> usize {
    if value < SUBBUCKETS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as usize;
    // Each octave `[2^o, 2^(o+1))` splits into SUBBUCKETS/2 equal slices
    // of width `2^(o-2)`; octaves below log2(SUBBUCKETS) are covered by
    // the exact small-value range above.
    let sub = ((value >> (octave - 2)) & (SUBBUCKETS as u64 / 2 - 1)) as usize;
    let base = SUBBUCKETS + (octave - 3) * (SUBBUCKETS / 2);
    (base + sub).min(BUCKETS - 1)
}

/// Lower bound of a bucket (inverse of [`bucket_of`], for reporting).
fn bucket_floor(bucket: usize) -> u64 {
    if bucket < SUBBUCKETS {
        return bucket as u64;
    }
    let rel = bucket - SUBBUCKETS;
    let octave = 3 + rel / (SUBBUCKETS / 2);
    let sub = (rel % (SUBBUCKETS / 2)) as u64;
    (1u64 << octave) + (sub << (octave - 2))
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of all recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile (`q` in `[0, 1]`): the floor of the bucket
    /// containing the `⌈q·count⌉`-th sample. Within 1/[`SUBBUCKETS`]
    /// relative error of the true order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_floor(bucket);
            }
        }
        self.max
    }

    /// Fold `other` into `self` (bucket-wise sum; exact in `u64`).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Last-written measurement.
    Gauge(f64),
    /// Distribution of recorded samples.
    Histogram(LogHistogram),
}

/// A name-keyed metric store. Interior-mutable (a `Mutex` over a sorted
/// map); recording is coarse-grained (per round / per cell), so
/// contention is not a concern — determinism and simplicity are.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, MetricValue>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `n` to the counter `name` (created at 0).
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += n,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Record `value` into the histogram `name` (created empty).
    pub fn histogram_record(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(LogHistogram::new()))
        {
            MetricValue::Histogram(h) => h.record(value),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Current value of `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.inner.lock().unwrap().get(name).cloned()
    }

    /// All metrics in name order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Fold `other` into `self`: counters add, histograms merge, gauges
    /// take `other`'s value (callers control determinism by merging in a
    /// fixed order — see [`ShardedMetrics::merge`]).
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.snapshot();
        let mut inner = self.inner.lock().unwrap();
        for (name, value) in theirs {
            match (inner.get_mut(&name), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(ref b)) => a.merge(b),
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = b,
                (Some(slot), value) => panic!("metric {name} kind mismatch: {slot:?} vs {value:?}"),
                (None, value) => {
                    inner.insert(name, value);
                }
            }
        }
    }

    /// Render the snapshot as one aligned text block (diagnostics).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(c) => out.push_str(&format!("{name} = {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("{name} = {g}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{name}: n={} mean={:.1} p50={} p99={} max={}\n",
                    h.count(),
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max()
                )),
            }
        }
        out
    }
}

/// Per-task metric shards for deterministic parallel aggregation: task
/// `i` of a `rayon::run_indexed` fan-out records into shard `i`; the
/// merge folds shards `0, 1, …, n−1` in that order regardless of which
/// worker executed which task.
///
/// Shards are `Arc`-shared so long-lived owners (a server's per-tenant
/// registries, a session holding its tenant's shard) can record into a
/// shard independently of the `ShardedMetrics` borrow — take one with
/// [`ShardedMetrics::shard_handle`].
pub struct ShardedMetrics {
    shards: Vec<Arc<MetricsRegistry>>,
}

impl ShardedMetrics {
    /// One shard per task index.
    pub fn new(n: usize) -> ShardedMetrics {
        ShardedMetrics {
            shards: (0..n).map(|_| Arc::new(MetricsRegistry::new())).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when built over zero tasks.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard for task `index`.
    pub fn shard(&self, index: usize) -> &MetricsRegistry {
        &self.shards[index]
    }

    /// An owning handle to the shard for task `index` (e.g. to attach it
    /// to a session builder that wants an `Arc<MetricsRegistry>`).
    pub fn shard_handle(&self, index: usize) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shards[index])
    }

    /// Merge all shards in index order into one registry.
    pub fn merge(&self) -> MetricsRegistry {
        let merged = MetricsRegistry::new();
        for shard in &self.shards {
            merged.merge_from(shard);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 5, 7, 8, 9, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last || v < 8, "bucket not monotone at {v}");
            last = last.max(b);
            assert!(
                bucket_floor(b) <= v.max(1),
                "floor {v} → {}",
                bucket_floor(b)
            );
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for v in [10u64, 100, 999, 12_345, 1_000_000, 123_456_789] {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v);
            let err = (v - floor) as f64 / v as f64;
            assert!(err <= 0.25, "value {v}: floor {floor}, err {err}");
        }
    }

    #[test]
    fn histogram_statistics() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        assert!((40..=56).contains(&p50), "p50 {p50}");
        assert!(h.quantile(1.0) <= 100);
        assert_eq!(LogHistogram::new().quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut combined = LogHistogram::new();
        for v in [3u64, 17, 90, 1000] {
            a.record(v);
            combined.record(v);
        }
        for v in [8u64, 8, 4096] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn registry_counter_gauge_histogram() {
        let m = MetricsRegistry::new();
        m.counter_add("c", 2);
        m.counter_add("c", 3);
        m.gauge_set("g", 1.5);
        m.histogram_record("h", 10);
        assert_eq!(m.get("c"), Some(MetricValue::Counter(5)));
        assert_eq!(m.get("g"), Some(MetricValue::Gauge(1.5)));
        let snap = m.snapshot();
        assert_eq!(snap.len(), 3);
        // BTreeMap ⇒ name order.
        assert_eq!(snap[0].0, "c");
        assert_eq!(snap[2].0, "h");
        assert!(m.render().contains("c = 5"));
    }

    #[test]
    fn sharded_merge_is_index_ordered() {
        let shards = ShardedMetrics::new(3);
        // Simulate out-of-order worker execution: task 2 records first.
        shards.shard(2).counter_add("n", 1);
        shards.shard(2).gauge_set("last", 2.0);
        shards.shard(0).counter_add("n", 10);
        shards.shard(0).gauge_set("last", 0.0);
        shards.shard(1).counter_add("n", 100);
        shards.shard(1).gauge_set("last", 1.0);
        let merged = shards.merge();
        assert_eq!(merged.get("n"), Some(MetricValue::Counter(111)));
        // Gauge resolves to the highest-index shard's write, regardless
        // of recording order.
        assert_eq!(merged.get("last"), Some(MetricValue::Gauge(2.0)));
    }

    #[test]
    fn sharded_merge_deterministic_across_orders() {
        let render_of = |order: &[usize]| {
            let shards = ShardedMetrics::new(4);
            for &i in order {
                shards.shard(i).counter_add("c", (i + 1) as u64);
                shards.shard(i).histogram_record("h", (i as u64 + 1) * 10);
            }
            shards.merge().render()
        };
        assert_eq!(render_of(&[0, 1, 2, 3]), render_of(&[3, 1, 0, 2]));
    }
}

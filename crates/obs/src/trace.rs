//! Structured-tracing facade: spans, events, and pluggable subscribers.
//!
//! The design follows the `tracing` crate's architecture at a fraction of
//! its surface:
//!
//! * every [`span!`]/[`event!`] expansion owns one `static` [`Callsite`]
//!   holding the [`Metadata`] (name, target, level) — callsite identity is
//!   the metadata address, so registration is free and repeatable;
//! * a process-global [`Subscriber`] receives enter/exit/event
//!   notifications; when none is installed the instrumentation cost is a
//!   single relaxed atomic load (no field evaluation, no clock reads);
//! * entered spans are tracked on a thread-local stack, so
//!   [`current_span_id`] gives error paths and journal records a context
//!   id without threading one through every signature.
//!
//! Spans can also dispatch to a *session-owned* subscriber handle (see
//! [`Span::enter_with`]) — the `ActiveLearner` session API hands its
//! subscriber down this path so a run can be traced without touching
//! process-global state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Severity / verbosity of a span or event, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or run-aborting conditions.
    Error,
    /// Suspicious conditions the run survives.
    Warn,
    /// Run/round milestones (the default emission level).
    Info,
    /// Per-phase detail: fit, eval, score, select.
    Debug,
    /// Hot-path detail; avoid per-sample spans even here.
    Trace,
}

impl Level {
    /// Fixed-width display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Static description of a callsite, shared by every firing of it.
#[derive(Debug)]
pub struct Metadata {
    /// Span/event name, e.g. `"al.round"`.
    pub name: &'static str,
    /// Emitting module path (`module_path!()` of the expansion).
    pub target: &'static str,
    /// Verbosity level.
    pub level: Level,
}

/// A `static` per-expansion registration cell: metadata plus a
/// once-latch so the global callsite inventory records each site exactly
/// once, however hot the loop around it.
pub struct Callsite {
    /// The callsite's static metadata.
    pub meta: Metadata,
    registered: AtomicBool,
}

impl Callsite {
    /// Const constructor used by the macros.
    pub const fn new(name: &'static str, target: &'static str, level: Level) -> Callsite {
        Callsite {
            meta: Metadata {
                name,
                target,
                level,
            },
            registered: AtomicBool::new(false),
        }
    }

    /// Record this callsite in the global inventory (idempotent).
    pub fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().lock().unwrap().push(self);
        }
    }
}

fn registry() -> &'static Mutex<Vec<&'static Callsite>> {
    static REGISTRY: Mutex<Vec<&'static Callsite>> = Mutex::new(Vec::new());
    &REGISTRY
}

/// Names and levels of every callsite the process has passed through so
/// far, in first-firing order. Diagnostic; the set grows monotonically.
pub fn callsites() -> Vec<(&'static str, Level)> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|c| (c.meta.name, c.meta.level))
        .collect()
}

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// Static string field.
    Str(&'static str),
    /// Owned string field.
    String(String),
    /// Boolean field.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::String(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

field_from!(
    u64 => U64 as u64,
    usize => U64 as u64,
    u32 => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::String(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

/// A `(name, value)` field pair.
pub type Field = (&'static str, FieldValue);

/// Process-unique span identifier (non-zero, monotone allocation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

fn next_span_id() -> SpanId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    SpanId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Receives span and event notifications. Implementations must be cheap
/// and re-entrant: notifications arrive from every worker thread.
pub trait Subscriber: Send + Sync {
    /// Level/target filter; a `false` suppresses the span or event before
    /// any field is materialized into a notification.
    fn enabled(&self, meta: &Metadata) -> bool {
        let _ = meta;
        true
    }

    /// A span was entered. `parent` is the innermost live span on the
    /// entering thread, if any.
    fn span_enter(&self, id: SpanId, parent: Option<SpanId>, meta: &Metadata, fields: &[Field]);

    /// A span closed after `elapsed_ns` nanoseconds.
    fn span_exit(&self, id: SpanId, meta: &Metadata, elapsed_ns: u64);

    /// A point event fired inside `span` (innermost live span, if any).
    fn event(&self, span: Option<SpanId>, meta: &Metadata, fields: &[Field]);
}

// ---------------------------------------------------------------------------
// Global dispatch
// ---------------------------------------------------------------------------

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn global() -> &'static RwLock<Option<Arc<dyn Subscriber>>> {
    static GLOBAL: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);
    &GLOBAL
}

/// `true` iff a subscriber is installed. This is the whole cost of a
/// disabled callsite: one relaxed load.
#[inline]
pub fn dispatch_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Install `sub` as the process-global subscriber, returning the previous
/// one. Pass the result to [`restore_subscriber`] to undo.
pub fn set_subscriber(sub: Arc<dyn Subscriber>) -> Option<Arc<dyn Subscriber>> {
    let mut slot = global().write().unwrap();
    let prev = slot.replace(sub);
    ACTIVE.store(true, Ordering::Relaxed);
    prev
}

/// Restore a previous subscriber (or none) returned by
/// [`set_subscriber`].
pub fn restore_subscriber(prev: Option<Arc<dyn Subscriber>>) {
    let mut slot = global().write().unwrap();
    ACTIVE.store(prev.is_some(), Ordering::Relaxed);
    *slot = prev;
}

/// RAII guard installing a subscriber for a scope (tests, bench modes).
/// Scopes must not overlap across threads — the global slot is single.
pub struct SubscriberGuard {
    prev: Option<Option<Arc<dyn Subscriber>>>,
}

/// Install `sub` globally until the returned guard drops.
pub fn subscriber_scope(sub: Arc<dyn Subscriber>) -> SubscriberGuard {
    SubscriberGuard {
        prev: Some(set_subscriber(sub)),
    }
}

impl Drop for SubscriberGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            restore_subscriber(prev);
        }
    }
}

fn current_subscriber() -> Option<Arc<dyn Subscriber>> {
    if !dispatch_active() {
        return None;
    }
    global().read().unwrap().clone()
}

// ---------------------------------------------------------------------------
// Thread-local span stack
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<SpanId>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The innermost span entered (and not yet closed) on this thread, if
/// any. Error constructors use this to stamp context onto failures.
pub fn current_span_id() -> Option<SpanId> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

// ---------------------------------------------------------------------------
// Span / event entry points
// ---------------------------------------------------------------------------

struct LiveSpan {
    sub: Arc<dyn Subscriber>,
    id: SpanId,
    meta: &'static Metadata,
    start: Instant,
}

/// An entered span; closes (and notifies the subscriber) on drop.
/// A disabled callsite yields an inert `Span` that costs nothing.
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    /// A span that was filtered out (or fired with dispatch inactive).
    pub const fn disabled() -> Span {
        Span { live: None }
    }

    /// `true` if this span is actually being recorded.
    pub fn is_enabled(&self) -> bool {
        self.live.is_some()
    }

    /// The id of this span, when recorded.
    pub fn id(&self) -> Option<SpanId> {
        self.live.as_ref().map(|l| l.id)
    }

    /// Enter a span dispatching to the global subscriber.
    pub fn enter(callsite: &'static Callsite, fields: &[Field]) -> Span {
        match current_subscriber() {
            Some(sub) => Span::enter_on(sub, callsite, fields),
            None => Span::disabled(),
        }
    }

    /// Enter a span on a session-owned subscriber if one is given, else
    /// fall back to the global dispatch. This is the construction path the
    /// `SessionBuilder` hands its handle down.
    pub fn enter_with(
        session: Option<&Arc<dyn Subscriber>>,
        callsite: &'static Callsite,
        fields: &[Field],
    ) -> Span {
        match session {
            Some(sub) => Span::enter_on(Arc::clone(sub), callsite, fields),
            None => Span::enter(callsite, fields),
        }
    }

    fn enter_on(sub: Arc<dyn Subscriber>, callsite: &'static Callsite, fields: &[Field]) -> Span {
        callsite.register();
        if !sub.enabled(&callsite.meta) {
            return Span::disabled();
        }
        let id = next_span_id();
        let parent = current_span_id();
        sub.span_enter(id, parent, &callsite.meta, fields);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Span {
            live: Some(LiveSpan {
                sub,
                id,
                meta: &callsite.meta,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let elapsed = live.start.elapsed().as_nanos() as u64;
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&id| id == live.id) {
                    stack.remove(pos);
                }
            });
            live.sub.span_exit(live.id, live.meta, elapsed);
        }
    }
}

/// Fire a point event at `callsite` through the global dispatch.
pub fn fire_event(callsite: &'static Callsite, fields: &[Field]) {
    if let Some(sub) = current_subscriber() {
        fire_event_on(&sub, callsite, fields);
    }
}

/// Fire a point event on a session subscriber, falling back to global.
pub fn fire_event_with(
    session: Option<&Arc<dyn Subscriber>>,
    callsite: &'static Callsite,
    fields: &[Field],
) {
    match session {
        Some(sub) => fire_event_on(sub, callsite, fields),
        None => fire_event(callsite, fields),
    }
}

fn fire_event_on(sub: &Arc<dyn Subscriber>, callsite: &'static Callsite, fields: &[Field]) {
    callsite.register();
    if sub.enabled(&callsite.meta) {
        sub.event(current_span_id(), &callsite.meta, fields);
    }
}

/// Open a span: `span!(Level::Debug, "al.fit", n = 120)`. Binds the
/// returned guard — the span closes when the guard drops. With no
/// subscriber installed the expansion costs one atomic load and never
/// evaluates its field expressions.
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        static __CALLSITE: $crate::trace::Callsite =
            $crate::trace::Callsite::new($name, module_path!(), $lvl);
        if $crate::trace::dispatch_active() {
            $crate::trace::Span::enter(
                &__CALLSITE,
                &[$((stringify!($k), $crate::trace::FieldValue::from($v))),*],
            )
        } else {
            $crate::trace::Span::disabled()
        }
    }};
}

/// Fire a point event: `event!(Level::Info, "journal.skip", cell = key)`.
/// Free (one atomic load, fields unevaluated) when no subscriber is
/// installed.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        static __CALLSITE: $crate::trace::Callsite =
            $crate::trace::Callsite::new($name, module_path!(), $lvl);
        if $crate::trace::dispatch_active() {
            $crate::trace::fire_event(
                &__CALLSITE,
                &[$((stringify!($k), $crate::trace::FieldValue::from($v))),*],
            );
        }
    }};
}

/// Session-scoped variant of [`span!`]: the first argument is an
/// `Option<&Arc<dyn Subscriber>>` owned by the calling session (e.g. the
/// handle a `SessionBuilder` threaded in). A `Some` handle dispatches to
/// it directly; `None` falls back to the global subscriber, keeping the
/// one-atomic-load disabled path.
#[macro_export]
macro_rules! session_span {
    ($sess:expr, $lvl:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        static __CALLSITE: $crate::trace::Callsite =
            $crate::trace::Callsite::new($name, module_path!(), $lvl);
        let __session: ::core::option::Option<
            &::std::sync::Arc<dyn $crate::trace::Subscriber>,
        > = $sess;
        if __session.is_some() || $crate::trace::dispatch_active() {
            $crate::trace::Span::enter_with(
                __session,
                &__CALLSITE,
                &[$((stringify!($k), $crate::trace::FieldValue::from($v))),*],
            )
        } else {
            $crate::trace::Span::disabled()
        }
    }};
}

/// Session-scoped variant of [`event!`]; see [`session_span!`].
#[macro_export]
macro_rules! session_event {
    ($sess:expr, $lvl:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        static __CALLSITE: $crate::trace::Callsite =
            $crate::trace::Callsite::new($name, module_path!(), $lvl);
        let __session: ::core::option::Option<
            &::std::sync::Arc<dyn $crate::trace::Subscriber>,
        > = $sess;
        if __session.is_some() || $crate::trace::dispatch_active() {
            $crate::trace::fire_event_with(
                __session,
                &__CALLSITE,
                &[$((stringify!($k), $crate::trace::FieldValue::from($v))),*],
            );
        }
    }};
}

// ---------------------------------------------------------------------------
// Bundled subscribers
// ---------------------------------------------------------------------------

/// One recorded span closure or event, as collected by
/// [`CollectingSubscriber`].
#[derive(Debug, Clone)]
pub struct Recorded {
    /// Callsite name.
    pub name: &'static str,
    /// `true` for span closures, `false` for events.
    pub is_span: bool,
    /// Span duration (ns); zero for events.
    pub elapsed_ns: u64,
    /// Field values captured at enter/fire time.
    pub fields: Vec<(&'static str, String)>,
}

/// A span-entry notification retained by [`CollectingSubscriber`].
type Entered = (SpanId, &'static str, Vec<(&'static str, String)>);

/// Test/diagnostic subscriber that records every notification in memory.
#[derive(Default)]
pub struct CollectingSubscriber {
    records: Mutex<Vec<Recorded>>,
    enters: Mutex<Vec<Entered>>,
    min_level: Option<Level>,
}

impl CollectingSubscriber {
    /// Collect everything.
    pub fn new() -> CollectingSubscriber {
        CollectingSubscriber::default()
    }

    /// Collect only notifications at `level` or coarser.
    pub fn with_max_level(level: Level) -> CollectingSubscriber {
        CollectingSubscriber {
            min_level: Some(level),
            ..CollectingSubscriber::default()
        }
    }

    /// All records so far (span closures + events, completion order).
    pub fn records(&self) -> Vec<Recorded> {
        self.records.lock().unwrap().clone()
    }

    /// Number of records named `name`.
    pub fn count(&self, name: &str) -> usize {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter(|r| r.name == name)
            .count()
    }
}

fn render_fields(fields: &[Field]) -> Vec<(&'static str, String)> {
    fields.iter().map(|(k, v)| (*k, v.to_string())).collect()
}

impl Subscriber for CollectingSubscriber {
    fn enabled(&self, meta: &Metadata) -> bool {
        self.min_level.map_or(true, |max| meta.level <= max)
    }

    fn span_enter(&self, id: SpanId, _parent: Option<SpanId>, meta: &Metadata, fields: &[Field]) {
        self.enters
            .lock()
            .unwrap()
            .push((id, meta.name, render_fields(fields)));
    }

    fn span_exit(&self, id: SpanId, meta: &Metadata, elapsed_ns: u64) {
        let fields = {
            let mut enters = self.enters.lock().unwrap();
            match enters.iter().rposition(|(eid, _, _)| *eid == id) {
                Some(pos) => enters.remove(pos).2,
                None => Vec::new(),
            }
        };
        self.records.lock().unwrap().push(Recorded {
            name: meta.name,
            is_span: true,
            elapsed_ns,
            fields,
        });
    }

    fn event(&self, _span: Option<SpanId>, meta: &Metadata, fields: &[Field]) {
        self.records.lock().unwrap().push(Recorded {
            name: meta.name,
            is_span: false,
            elapsed_ns: 0,
            fields: render_fields(fields),
        });
    }
}

/// Subscriber that accepts everything and records nothing — used to
/// measure the enabled-dispatch overhead in isolation.
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn span_enter(&self, _: SpanId, _: Option<SpanId>, _: &Metadata, _: &[Field]) {}
    fn span_exit(&self, _: SpanId, _: &Metadata, _: u64) {}
    fn event(&self, _: Option<SpanId>, _: &Metadata, _: &[Field]) {}
}

/// Subscriber printing span closures and events to stderr, one line
/// each — the `--trace` mode of the experiment harness. Output goes to
/// stderr only, so instrumented runs keep byte-identical stdout.
pub struct StderrSubscriber {
    /// Coarsest level printed.
    pub max_level: Level,
}

impl Subscriber for StderrSubscriber {
    fn enabled(&self, meta: &Metadata) -> bool {
        meta.level <= self.max_level
    }

    fn span_enter(&self, _: SpanId, _: Option<SpanId>, _: &Metadata, _: &[Field]) {}

    fn span_exit(&self, _id: SpanId, meta: &Metadata, elapsed_ns: u64) {
        eprintln!(
            "[{:>5}] {} close {:.3} ms",
            meta.level.as_str(),
            meta.name,
            elapsed_ns as f64 / 1e6
        );
    }

    fn event(&self, _span: Option<SpanId>, meta: &Metadata, fields: &[Field]) {
        let rendered: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        eprintln!(
            "[{:>5}] {} {}",
            meta.level.as_str(),
            meta.name,
            rendered.join(" ")
        );
    }
}

/// Measure the disabled-callsite cost: fire `iters` span expansions with
/// no subscriber consulted and return the mean cost per expansion in
/// nanoseconds. Used by `bench --check` to pin the "observability off"
/// overhead.
pub fn disabled_span_cost_ns(iters: u64) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        let _s = crate::span!(Level::Trace, "obs.disabled_probe", i = i);
        std::hint::black_box(&_s);
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global subscriber slot is shared: tests that install one are
    // serialized behind this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _l = TEST_LOCK.lock().unwrap();
        let s = span!(Level::Info, "t.disabled", x = 1usize);
        assert!(!s.is_enabled());
        assert!(s.id().is_none());
        assert!(current_span_id().is_none());
    }

    #[test]
    fn spans_nest_and_record() {
        let _l = TEST_LOCK.lock().unwrap();
        let sub = Arc::new(CollectingSubscriber::new());
        let _guard = subscriber_scope(sub.clone());
        {
            let outer = span!(Level::Info, "t.outer", n = 2usize);
            assert_eq!(current_span_id(), outer.id());
            {
                let inner = span!(Level::Debug, "t.inner");
                assert_eq!(current_span_id(), inner.id());
            }
            assert_eq!(current_span_id(), outer.id());
            event!(Level::Info, "t.event", msg = "hello");
        }
        assert_eq!(sub.count("t.inner"), 1);
        assert_eq!(sub.count("t.outer"), 1);
        assert_eq!(sub.count("t.event"), 1);
        let outer = sub
            .records()
            .into_iter()
            .find(|r| r.name == "t.outer")
            .unwrap();
        assert!(outer.is_span);
        assert_eq!(outer.fields, vec![("n", "2".to_string())]);
    }

    #[test]
    fn level_filter_suppresses() {
        let _l = TEST_LOCK.lock().unwrap();
        let sub = Arc::new(CollectingSubscriber::with_max_level(Level::Info));
        let _guard = subscriber_scope(sub.clone());
        {
            let s = span!(Level::Debug, "t.filtered");
            assert!(!s.is_enabled());
        }
        event!(Level::Trace, "t.filtered_event");
        event!(Level::Warn, "t.kept_event");
        assert_eq!(sub.count("t.filtered"), 0);
        assert_eq!(sub.count("t.filtered_event"), 0);
        assert_eq!(sub.count("t.kept_event"), 1);
    }

    #[test]
    fn scope_restores_previous_subscriber() {
        let _l = TEST_LOCK.lock().unwrap();
        let first = Arc::new(CollectingSubscriber::new());
        let guard_a = subscriber_scope(first.clone());
        {
            let second = Arc::new(CollectingSubscriber::new());
            let _guard_b = subscriber_scope(second.clone());
            event!(Level::Info, "t.scoped");
            assert_eq!(second.count("t.scoped"), 1);
        }
        event!(Level::Info, "t.after");
        assert_eq!(first.count("t.scoped"), 0);
        assert_eq!(first.count("t.after"), 1);
        drop(guard_a);
        assert!(!dispatch_active());
    }

    #[test]
    fn session_handle_bypasses_global() {
        let _l = TEST_LOCK.lock().unwrap();
        static CS: Callsite = Callsite::new("t.session", "tests", Level::Info);
        let sub: Arc<dyn Subscriber> = Arc::new(CollectingSubscriber::new());
        {
            let s = Span::enter_with(Some(&sub), &CS, &[]);
            assert!(s.is_enabled());
        }
        fire_event_with(Some(&sub), &CS, &[("k", FieldValue::U64(7))]);
        let collecting = callsites();
        assert!(collecting.iter().any(|(n, _)| *n == "t.session"));
    }

    #[test]
    fn callsites_registered_once() {
        let _l = TEST_LOCK.lock().unwrap();
        let sub = Arc::new(CollectingSubscriber::new());
        let _guard = subscriber_scope(sub);
        for _ in 0..3 {
            event!(Level::Info, "t.registered_once");
        }
        let names: Vec<_> = callsites()
            .into_iter()
            .filter(|(n, _)| *n == "t.registered_once")
            .collect();
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn disabled_cost_is_small() {
        let _l = TEST_LOCK.lock().unwrap();
        // Generous bound: a disabled callsite is one atomic load + branch;
        // even debug builds come in far under a microsecond.
        assert!(disabled_span_cost_ns(10_000) < 1_000.0);
    }
}

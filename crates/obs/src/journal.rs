//! Crash-safe JSONL run journal.
//!
//! A journal is an append-only file of one JSON record per line. Writers
//! serialize a record, append it *as a single write*, and flush before
//! returning — after a crash the file contains every fully-appended
//! record plus at most one truncated tail line. The reader tolerates
//! exactly that failure mode: it stops at the first line that does not
//! parse, treating it (and anything after it) as the crash point.
//!
//! The journal itself is schema-agnostic: callers append any
//! `serde::Serialize` record carrying its own `kind` discriminator and
//! re-parse lines with [`JournalReader::records`]. The experiment
//! harness builds its cell/round schema on top (see
//! `histal-bench::journal`).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::Serialize;

/// Append handle to a JSONL journal file. Clone-free: share via `Arc`.
/// Appends are serialized by an internal lock; each record is written and
/// flushed atomically with respect to other appenders.
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Create (truncate) a journal at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let file = File::create(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// Open an existing journal for appending (resume mode). The file is
    /// first truncated back to its last complete line, so a crashed tail
    /// record cannot corrupt the records appended after it.
    pub fn append_to(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        truncate_to_last_complete_line(&path)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record as a single flushed line.
    pub fn append<T: Serialize>(&self, record: &T) -> std::io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::other(format!("journal record serialization: {e}")))?;
        debug_assert!(!line.contains('\n'), "records must be single-line");
        line.push('\n');
        let mut file = self.file.lock().unwrap();
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Force file contents to stable storage (fsync).
    pub fn sync(&self) -> std::io::Result<()> {
        self.file.lock().unwrap().sync_data()
    }
}

/// Drop everything after the last `\n` in the file (a partially-written
/// crash tail). No-op on files ending in a newline or missing files.
fn truncate_to_last_complete_line(path: &Path) -> std::io::Result<()> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    match bytes.iter().rposition(|&b| b == b'\n') {
        Some(last) if last + 1 < bytes.len() => {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(last as u64 + 1)
        }
        Some(_) => Ok(()),
        None if bytes.is_empty() => Ok(()),
        None => {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(0)
        }
    }
}

/// Read side: the complete records of a (possibly crash-truncated)
/// journal.
pub struct JournalReader {
    lines: Vec<String>,
    /// `true` if the file ended in an incomplete or unparseable tail
    /// (i.e. the journal recorded a crash mid-append).
    pub truncated: bool,
}

impl JournalReader {
    /// Load `path`, keeping every line up to the first incomplete or
    /// non-JSON one.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<JournalReader> {
        let file = File::open(path.as_ref())?;
        let mut lines = Vec::new();
        let mut truncated = false;
        let mut reader = BufReader::new(file);
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = reader.read_line(&mut buf)?;
            if n == 0 {
                break;
            }
            if !buf.ends_with('\n') {
                // Partial tail line: crash point.
                truncated = true;
                break;
            }
            let line = buf.trim_end();
            if line.is_empty() {
                continue;
            }
            if serde_json::from_str::<serde::Value>(line).is_err() {
                // Corrupt line: treat as the crash point, drop the rest.
                truncated = true;
                break;
            }
            lines.push(line.to_string());
        }
        Ok(JournalReader { lines, truncated })
    }

    /// Raw complete lines, in append order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Parse every line as `T`, skipping lines of other record kinds
    /// (i.e. lines that fail to deserialize as `T`).
    pub fn records<T: serde::Deserialize>(&self) -> Vec<T> {
        self.lines
            .iter()
            .filter_map(|l| serde_json::from_str(l).ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Rec {
        kind: String,
        id: usize,
        value: f64,
    }

    fn rec(id: usize) -> Rec {
        Rec {
            kind: "rec".into(),
            id,
            value: id as f64 * 0.5,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("histal-obs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let journal = Journal::create(&path).unwrap();
        for i in 0..5 {
            journal.append(&rec(i)).unwrap();
        }
        let reader = JournalReader::load(&path).unwrap();
        assert!(!reader.truncated);
        let records: Vec<Rec> = reader.records();
        assert_eq!(records, (0..5).map(rec).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let path = tmp("truncated");
        let journal = Journal::create(&path).unwrap();
        for i in 0..4 {
            journal.append(&rec(i)).unwrap();
        }
        drop(journal);
        // Simulate a crash mid-append: chop the file inside the last line.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let reader = JournalReader::load(&path).unwrap();
        assert!(reader.truncated);
        let records: Vec<Rec> = reader.records();
        assert_eq!(records, (0..3).map(rec).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_to_repairs_crash_tail() {
        let path = tmp("repair");
        {
            let journal = Journal::create(&path).unwrap();
            for i in 0..3 {
                journal.append(&rec(i)).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        {
            let journal = Journal::append_to(&path).unwrap();
            journal.append(&rec(99)).unwrap();
        }
        let reader = JournalReader::load(&path).unwrap();
        assert!(!reader.truncated);
        let records: Vec<Rec> = reader.records();
        assert_eq!(records, vec![rec(0), rec(1), rec(99)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mixed_kinds_filter_by_type() {
        #[derive(Serialize, Deserialize)]
        struct Other {
            kind: String,
            flag: bool,
        }
        let path = tmp("mixed");
        let journal = Journal::create(&path).unwrap();
        journal.append(&rec(1)).unwrap();
        journal
            .append(&Other {
                kind: "other".into(),
                flag: true,
            })
            .unwrap();
        journal.append(&rec(2)).unwrap();
        let reader = JournalReader::load(&path).unwrap();
        let records: Vec<Rec> = reader.records();
        // `Other` lacks Rec's fields, so it is filtered out.
        assert_eq!(records.len(), 2);
        assert_eq!(reader.lines().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_missing() {
        let path = tmp("empty");
        Journal::create(&path).unwrap();
        let reader = JournalReader::load(&path).unwrap();
        assert!(reader.lines().is_empty() && !reader.truncated);
        std::fs::remove_file(&path).ok();
        assert!(JournalReader::load(&path).is_err());
        // append_to on a missing file behaves like create… of nothing:
        // the truncation pass is a no-op and open(append) fails cleanly.
        assert!(Journal::append_to(&path).is_err());
    }
}

//! Property-based tests for the learning-to-rank stack.

use proptest::prelude::*;

use histal_ltr::{
    dcg_at, ndcg_at, ndcg_of_ranking, LambdaMart, LambdaMartConfig, QueryGroup, Ranker,
    RankingDataset, RegressionTree, TreeConfig,
};

fn rels_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..4.0, 1..15).prop_map(|v| v.into_iter().map(f64::floor).collect())
}

proptest! {
    /// NDCG is always in [0, 1].
    #[test]
    fn ndcg_bounded(rels in rels_strategy(), k in 1usize..15) {
        let v = ndcg_at(&rels, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "ndcg {v}");
    }

    /// Ranking by the labels themselves is optimal.
    #[test]
    fn ranking_by_labels_is_perfect(rels in rels_strategy()) {
        let v = ndcg_of_ranking(&rels, &rels, rels.len());
        prop_assert!((v - 1.0).abs() < 1e-9);
    }

    /// DCG is monotone in k.
    #[test]
    fn dcg_monotone_in_k(rels in rels_strategy()) {
        let mut prev = 0.0;
        for k in 1..=rels.len() {
            let d = dcg_at(&rels, k);
            prop_assert!(d + 1e-12 >= prev);
            prev = d;
        }
    }

    /// A mean-fit tree with no regularization predicts within the target
    /// range for in-sample rows.
    #[test]
    fn tree_prediction_within_target_range(
        targets in prop::collection::vec(-5.0f64..5.0, 2..30),
    ) {
        let rows: Vec<Vec<f64>> = (0..targets.len()).map(|i| vec![i as f64]).collect();
        let config = TreeConfig { max_depth: 4, min_samples_leaf: 1, lambda: 0.0, min_gain: 1e-12 };
        let tree = RegressionTree::fit_mean(&rows, &targets, &config);
        let min = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let max = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for row in &rows {
            let p = tree.predict(row);
            prop_assert!(p >= min - 1e-9 && p <= max + 1e-9, "prediction {p} outside [{min}, {max}]");
        }
    }

    /// Deeper trees never have fewer leaves than shallower ones on the
    /// same data, and leaf counts are bounded by 2^depth.
    #[test]
    fn tree_leaf_bounds(targets in prop::collection::vec(-5.0f64..5.0, 4..30)) {
        let rows: Vec<Vec<f64>> = (0..targets.len()).map(|i| vec![i as f64]).collect();
        let mk = |depth| {
            RegressionTree::fit_mean(
                &rows,
                &targets,
                &TreeConfig { max_depth: depth, min_samples_leaf: 1, lambda: 0.0, min_gain: 1e-12 },
            )
        };
        let shallow = mk(2);
        let deep = mk(5);
        prop_assert!(shallow.n_leaves() <= 4);
        prop_assert!(deep.n_leaves() <= 32);
        prop_assert!(deep.depth() <= 5);
        prop_assert!(shallow.depth() <= 2);
    }

    /// LambdaMART scores are finite for arbitrary query groups.
    #[test]
    fn lambdamart_scores_finite(
        rels in rels_strategy(),
        feats in prop::collection::vec(0.0f64..1.0, 1..15),
    ) {
        let n = rels.len().min(feats.len());
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![feats[i], 1.0 - feats[i]]).collect();
        let mut ds = RankingDataset::new();
        ds.push(QueryGroup::new(features.clone(), rels[..n].to_vec()));
        let model = LambdaMart::fit(&ds, &LambdaMartConfig { n_trees: 5, ..Default::default() });
        for row in &features {
            prop_assert!(model.score(row).is_finite());
        }
    }
}

//! LambdaMART: gradient-boosted regression trees with lambda gradients.
//!
//! For every pair of documents `(i, j)` in a query group with
//! `rel_i > rel_j`, the pairwise cross-entropy gradient
//! `ρ = 1 / (1 + e^{σ(s_i − s_j)})` is weighted by `|ΔNDCG|`, the NDCG
//! change that swapping the two documents would cause at their current
//! ranks (Burges 2010, "From RankNet to LambdaRank to LambdaMART"). The
//! accumulated lambdas and their second derivatives feed a Newton-step
//! regression tree per boosting round.

use serde::{Deserialize, Serialize};

use crate::dataset::RankingDataset;
use crate::metrics::{discount, gain, ideal_dcg_at, ndcg_of_ranking};
use crate::tree::{RegressionTree, TreeConfig};
use crate::Ranker;

/// Hyper-parameters for [`LambdaMart::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LambdaMartConfig {
    /// Boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's output.
    pub learning_rate: f64,
    /// Sigmoid steepness σ.
    pub sigma: f64,
    /// NDCG truncation for ΔNDCG weighting; 0 means the full group.
    pub ndcg_k: usize,
    /// Tree induction parameters.
    pub tree: TreeConfig,
}

impl Default for LambdaMartConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            learning_rate: 0.1,
            sigma: 1.0,
            ndcg_k: 0,
            tree: TreeConfig {
                max_depth: 3,
                min_samples_leaf: 4,
                lambda: 1.0,
                min_gain: 1e-9,
            },
        }
    }
}

/// A trained LambdaMART ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LambdaMart {
    trees: Vec<RegressionTree>,
    learning_rate: f64,
    /// Mean training NDCG after each boosting round (diagnostics).
    pub train_ndcg_history: Vec<f64>,
}

impl LambdaMart {
    /// Train on a query-grouped dataset.
    ///
    /// Degenerate groups (all labels equal) contribute no lambdas but are
    /// still scored; datasets with no trainable group yield a constant
    /// (zero-scoring) model.
    pub fn fit(dataset: &RankingDataset, config: &LambdaMartConfig) -> Self {
        let mut model = Self {
            trees: Vec::with_capacity(config.n_trees),
            learning_rate: config.learning_rate,
            train_ndcg_history: Vec::with_capacity(config.n_trees),
        };
        let n_docs = dataset.n_docs();
        if n_docs == 0 || dataset.trainable_groups().next().is_none() {
            return model;
        }
        // Flatten rows once; remember group boundaries.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n_docs);
        let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(dataset.groups.len());
        for g in &dataset.groups {
            let start = rows.len();
            rows.extend(g.features.iter().cloned());
            bounds.push((start, rows.len()));
        }
        let mut scores = vec![0.0; n_docs];

        for _ in 0..config.n_trees {
            let mut lambdas = vec![0.0; n_docs];
            let mut weights = vec![0.0; n_docs];
            for (g, &(start, end)) in dataset.groups.iter().zip(&bounds) {
                if g.is_degenerate() {
                    continue;
                }
                accumulate_lambdas(
                    &scores[start..end],
                    &g.relevance,
                    config,
                    &mut lambdas[start..end],
                    &mut weights[start..end],
                );
            }
            // Tree fitted to Newton step: leaf = Σλ / (Σw + reg).
            let grads: Vec<f64> = lambdas.iter().map(|l| -l).collect();
            let tree = RegressionTree::fit(&rows, &grads, &weights, &config.tree);
            for (s, row) in scores.iter_mut().zip(&rows) {
                *s += config.learning_rate * tree.predict(row);
            }
            model.trees.push(tree);
            // Diagnostics: mean NDCG across groups.
            let mut ndcg_sum = 0.0;
            for (g, &(start, end)) in dataset.groups.iter().zip(&bounds) {
                let k = if config.ndcg_k == 0 {
                    g.len()
                } else {
                    config.ndcg_k
                };
                ndcg_sum += ndcg_of_ranking(&scores[start..end], &g.relevance, k);
            }
            model
                .train_ndcg_history
                .push(ndcg_sum / dataset.groups.len() as f64);
        }
        model
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-count feature importance, normalized to sum to 1 (empty for
    /// a treeless model). Interprets which inputs the learned ranker
    /// actually consults — e.g. which LHS history features drive
    /// selection.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut counts: Vec<usize> = Vec::new();
        for t in &self.trees {
            t.accumulate_split_counts(&mut counts);
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }
}

impl Ranker for LambdaMart {
    fn score(&self, features: &[f64]) -> f64 {
        self.trees
            .iter()
            .map(|t| self.learning_rate * t.predict(features))
            .sum()
    }
}

/// Accumulate lambda gradients and weights for one query group.
fn accumulate_lambdas(
    scores: &[f64],
    rels: &[f64],
    config: &LambdaMartConfig,
    lambdas: &mut [f64],
    weights: &mut [f64],
) {
    let n = scores.len();
    let k = if config.ndcg_k == 0 { n } else { config.ndcg_k };
    let ideal = ideal_dcg_at(rels, k);
    if ideal <= 0.0 {
        return;
    }
    // Current rank of each document under the current scores.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank_of = vec![0usize; n];
    for (rank, &doc) in order.iter().enumerate() {
        rank_of[doc] = rank;
    }
    for i in 0..n {
        for j in 0..n {
            if rels[i] <= rels[j] {
                continue; // only pairs where i should outrank j
            }
            let (ri, rj) = (rank_of[i], rank_of[j]);
            // Swapping only changes DCG through positions inside the cutoff.
            if ri >= k && rj >= k {
                continue;
            }
            let di = if ri < k { discount(ri) } else { 0.0 };
            let dj = if rj < k { discount(rj) } else { 0.0 };
            let delta_ndcg = ((gain(rels[i]) - gain(rels[j])) * (di - dj)).abs() / ideal;
            if delta_ndcg == 0.0 {
                continue;
            }
            let rho = 1.0 / (1.0 + (config.sigma * (scores[i] - scores[j])).exp());
            let lambda = config.sigma * rho * delta_ndcg;
            let w = config.sigma * config.sigma * rho * (1.0 - rho) * delta_ndcg;
            lambdas[i] += lambda;
            lambdas[j] -= lambda;
            weights[i] += w;
            weights[j] += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryGroup;
    use crate::metrics::ndcg_of_ranking;

    /// Groups where relevance is a clean monotone function of feature 0.
    fn monotone_dataset() -> RankingDataset {
        let mut ds = RankingDataset::new();
        for q in 0..12 {
            let offset = q as f64 * 0.01;
            let features: Vec<Vec<f64>> =
                (0..8).map(|d| vec![d as f64 / 8.0 + offset, 0.5]).collect();
            let relevance: Vec<f64> = (0..8).map(|d| (d / 2) as f64).collect();
            ds.push(QueryGroup::new(features, relevance));
        }
        ds
    }

    #[test]
    fn learns_monotone_ranking() {
        let ds = monotone_dataset();
        let model = LambdaMart::fit(&ds, &LambdaMartConfig::default());
        // Higher feature → higher score.
        assert!(model.score(&[0.9, 0.5]) > model.score(&[0.1, 0.5]));
        // Ranking the first group should be near-perfect.
        let g = &ds.groups[0];
        let scores = model.score_batch(&g.features);
        let ndcg = ndcg_of_ranking(&scores, &g.relevance, g.len());
        assert!(ndcg > 0.95, "ndcg {ndcg}");
    }

    #[test]
    fn training_ndcg_improves() {
        let ds = monotone_dataset();
        let model = LambdaMart::fit(&ds, &LambdaMartConfig::default());
        let first = model.train_ndcg_history[0];
        let last = *model.train_ndcg_history.last().unwrap();
        assert!(last >= first, "ndcg fell from {first} to {last}");
        assert!(last > 0.9);
    }

    #[test]
    fn empty_dataset_scores_zero() {
        let model = LambdaMart::fit(&RankingDataset::new(), &LambdaMartConfig::default());
        assert_eq!(model.n_trees(), 0);
        assert_eq!(model.score(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn all_degenerate_groups_scores_zero() {
        let mut ds = RankingDataset::new();
        ds.push(QueryGroup::new(vec![vec![0.0], vec![1.0]], vec![1.0, 1.0]));
        let model = LambdaMart::fit(&ds, &LambdaMartConfig::default());
        assert_eq!(model.n_trees(), 0);
    }

    #[test]
    fn lambda_signs_push_relevant_up() {
        // Two docs, the relevant one currently scored lower.
        let config = LambdaMartConfig::default();
        let mut lambdas = vec![0.0; 2];
        let mut weights = vec![0.0; 2];
        accumulate_lambdas(
            &[0.0, 1.0],
            &[2.0, 0.0],
            &config,
            &mut lambdas,
            &mut weights,
        );
        assert!(lambdas[0] > 0.0, "relevant doc must be pushed up");
        assert!(lambdas[1] < 0.0, "irrelevant doc must be pushed down");
        assert!(weights[0] > 0.0 && weights[1] > 0.0);
    }

    #[test]
    fn correctly_ranked_pair_gets_small_lambda() {
        let config = LambdaMartConfig::default();
        let mut wrong = vec![0.0; 2];
        let mut w1 = vec![0.0; 2];
        accumulate_lambdas(&[-3.0, 3.0], &[2.0, 0.0], &config, &mut wrong, &mut w1);
        let mut right = vec![0.0; 2];
        let mut w2 = vec![0.0; 2];
        accumulate_lambdas(&[3.0, -3.0], &[2.0, 0.0], &config, &mut right, &mut w2);
        assert!(
            wrong[0] > right[0],
            "mis-ranked pair must get larger gradient"
        );
    }

    #[test]
    fn ndcg_k_truncation_ignores_tail_pairs() {
        let config = LambdaMartConfig {
            ndcg_k: 1,
            ..Default::default()
        };
        // rels: docs 0 and 1 tie at the top grade; doc 1 vs doc 2 is the
        // only strict preference not involving rank 0 — with k = 1 both sit
        // outside the cutoff, so no lambda may accumulate on doc 1.
        let scores = [3.0, 2.0, 1.0]; // ranks 0, 1, 2
        let rels = [2.0, 2.0, 1.0];
        let mut lambdas = vec![0.0; 3];
        let mut weights = vec![0.0; 3];
        accumulate_lambdas(&scores, &rels, &config, &mut lambdas, &mut weights);
        assert_eq!(lambdas[1], 0.0);
        assert_eq!(weights[1], 0.0);
        // Pair (0, 2) involves rank 0 and does accumulate.
        assert!(lambdas[0] > 0.0);
    }

    #[test]
    fn feature_importance_concentrates_on_signal() {
        let ds = monotone_dataset();
        let model = LambdaMart::fit(&ds, &LambdaMartConfig::default());
        let imp = model.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Feature 0 carries all the relevance signal; feature 1 is constant.
        assert!(imp[0] > 0.9, "importance {imp:?}");
    }

    #[test]
    fn feature_importance_empty_for_untrained() {
        let model = LambdaMart::fit(&RankingDataset::new(), &LambdaMartConfig::default());
        assert!(model.feature_importance().is_empty());
    }

    #[test]
    fn generalizes_to_unseen_group() {
        let ds = monotone_dataset();
        let model = LambdaMart::fit(&ds, &LambdaMartConfig::default());
        // A fresh group whose offset interpolates the training offsets
        // (0.00..0.11) rather than extrapolating beyond them.
        let features: Vec<Vec<f64>> = (0..8).map(|d| vec![d as f64 / 8.0 + 0.055, 0.5]).collect();
        let rels: Vec<f64> = (0..8).map(|d| (d / 2) as f64).collect();
        let scores = model.score_batch(&features);
        assert!(ndcg_of_ranking(&scores, &rels, 8) > 0.9);
    }
}

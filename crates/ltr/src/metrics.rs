//! Ranking quality metrics: DCG and NDCG.
//!
//! LambdaMART's lambda gradients are weighted by `|ΔNDCG|` — the change in
//! NDCG caused by swapping two documents — so these functions are on the
//! training hot path, not just evaluation.

/// Gain of a graded relevance label: `2^rel − 1`.
#[inline]
pub fn gain(rel: f64) -> f64 {
    (2f64).powf(rel) - 1.0
}

/// Position discount `1 / log2(rank + 2)` for 0-based `rank`.
#[inline]
pub fn discount(rank: usize) -> f64 {
    1.0 / ((rank as f64) + 2.0).log2()
}

/// DCG@k of relevance labels already listed in ranked order.
pub fn dcg_at(ranked_rels: &[f64], k: usize) -> f64 {
    ranked_rels
        .iter()
        .take(k)
        .enumerate()
        .map(|(rank, &rel)| gain(rel) * discount(rank))
        .sum()
}

/// Ideal DCG@k: DCG of the labels sorted descending.
pub fn ideal_dcg_at(rels: &[f64], k: usize) -> f64 {
    let mut sorted = rels.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    dcg_at(&sorted, k)
}

/// NDCG@k of labels in ranked order; 1.0 when the ideal DCG is zero
/// (nothing relevant — every ranking is equally "perfect").
pub fn ndcg_at(ranked_rels: &[f64], k: usize) -> f64 {
    let ideal = ideal_dcg_at(ranked_rels, k);
    if ideal <= 0.0 {
        1.0
    } else {
        dcg_at(ranked_rels, k) / ideal
    }
}

/// NDCG@k of a scoring: documents with labels `rels` are ranked by
/// descending `scores` (stable on ties), then NDCG is computed.
///
/// ```
/// use histal_ltr::ndcg_of_ranking;
/// // Scores rank the most relevant document first → perfect NDCG.
/// assert!((ndcg_of_ranking(&[0.9, 0.5, 0.1], &[2.0, 1.0, 0.0], 3) - 1.0).abs() < 1e-12);
/// ```
pub fn ndcg_of_ranking(scores: &[f64], rels: &[f64], k: usize) -> f64 {
    assert_eq!(scores.len(), rels.len(), "scores and labels must align");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let ranked: Vec<f64> = order.iter().map(|&i| rels[i]).collect();
    ndcg_at(&ranked, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_and_discount_basics() {
        assert_eq!(gain(0.0), 0.0);
        assert_eq!(gain(1.0), 1.0);
        assert_eq!(gain(2.0), 3.0);
        assert!((discount(0) - 1.0).abs() < 1e-12);
        assert!((discount(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dcg_hand_worked() {
        // rels [3,2,0]: (2^3-1)/log2(2) + (2^2-1)/log2(3) + 0
        let expected = 7.0 / 1.0 + 3.0 / (3f64).log2();
        assert!((dcg_at(&[3.0, 2.0, 0.0], 3) - expected).abs() < 1e-12);
    }

    #[test]
    fn dcg_truncates_at_k() {
        assert_eq!(dcg_at(&[1.0, 1.0, 1.0], 1), 1.0);
    }

    #[test]
    fn perfect_order_has_ndcg_one() {
        assert!((ndcg_at(&[3.0, 2.0, 1.0, 0.0], 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_order_below_one() {
        let v = ndcg_at(&[0.0, 1.0, 2.0, 3.0], 4);
        assert!(v < 1.0 && v > 0.0);
    }

    #[test]
    fn all_zero_labels_ndcg_is_one() {
        assert_eq!(ndcg_at(&[0.0, 0.0], 2), 1.0);
    }

    #[test]
    fn ndcg_of_ranking_sorts_by_score() {
        // Scores reverse the natural order; labels [0,1,2] should be ranked [2,1,0].
        let v = ndcg_of_ranking(&[0.1, 0.5, 0.9], &[0.0, 1.0, 2.0], 3);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_of_bad_ranking_penalized() {
        let good = ndcg_of_ranking(&[3.0, 2.0, 1.0], &[2.0, 1.0, 0.0], 3);
        let bad = ndcg_of_ranking(&[1.0, 2.0, 3.0], &[2.0, 1.0, 0.0], 3);
        assert!(good > bad);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_scores_panic() {
        let _ = ndcg_of_ranking(&[1.0], &[1.0, 2.0], 2);
    }
}

//! Learning-to-rank substrate.
//!
//! The LHS strategy (paper §4.4) trains a LambdaMART ranker over features
//! extracted from historical evaluation sequences; each active-learning
//! iteration forms one *query group* whose documents are the candidate
//! samples and whose graded relevance labels are the bucketed
//! `Eval(M′) − Eval(M)` improvements (Algorithm 1). This crate implements
//! that stack from scratch:
//!
//! * [`dataset`] — query-grouped ranking datasets,
//! * [`tree`] — regression trees with Newton leaf values,
//! * [`metrics`] — DCG / NDCG,
//! * [`lambdamart`] — the boosted LambdaMART ranker,
//! * [`linear`] — a pairwise-logistic linear ranker (ablation baseline),
//! * [`pointwise`] — a pointwise regression ranker (the LAL substrate).

pub mod dataset;
pub mod lambdamart;
pub mod linear;
pub mod metrics;
pub mod pointwise;
pub mod tree;

pub use dataset::{QueryGroup, RankingDataset};
pub use lambdamart::{LambdaMart, LambdaMartConfig};
pub use linear::{LinearRanker, LinearRankerConfig};
pub use metrics::{dcg_at, ndcg_at, ndcg_of_ranking};
pub use pointwise::{PointwiseConfig, PointwiseRegressor};
pub use tree::{RegressionTree, TreeConfig};

/// A trained model that scores feature vectors for ranking.
///
/// Higher scores mean "rank earlier". Both [`LambdaMart`] and
/// [`LinearRanker`] implement this, so the LHS strategy can swap rankers
/// for the ablation study.
pub trait Ranker: Send + Sync {
    /// Score one feature vector.
    fn score(&self, features: &[f64]) -> f64;

    /// Score a batch; the default maps [`Ranker::score`].
    fn score_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.score(r)).collect()
    }
}

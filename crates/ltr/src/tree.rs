//! Regression trees with Newton-step leaf values.
//!
//! The trees are fitted to per-row gradient/hessian pairs (second-order
//! boosting, as in LambdaMART/XGBoost): each leaf outputs
//! `−Σg / (Σh + λ)`, and splits maximize the standard gain
//! `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)`. Plain least-squares regression
//! is the special case `g = −target, h = 1` (leaf = shrunken mean), exposed
//! as [`RegressionTree::fit_mean`].

#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

/// Hyper-parameters for tree induction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth; a depth of 0 yields a single leaf.
    pub max_depth: usize,
    /// Minimum rows on each side of a split.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum gain for a split to be accepted.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_samples_leaf: 2,
            lambda: 1.0,
            min_gain: 1e-9,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Rows with `x[feature] <= threshold` go left.
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    root: Node,
}

impl RegressionTree {
    /// Fit to gradient/hessian pairs.
    ///
    /// # Panics
    /// Panics if the slices are misaligned or `rows` is empty.
    pub fn fit(rows: &[Vec<f64>], grads: &[f64], hess: &[f64], config: &TreeConfig) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree to zero rows");
        assert_eq!(rows.len(), grads.len(), "rows/grads misaligned");
        assert_eq!(rows.len(), hess.len(), "rows/hess misaligned");
        let idx: Vec<u32> = (0..rows.len() as u32).collect();
        let root = build(rows, grads, hess, idx, config.max_depth, config);
        Self { root }
    }

    /// Least-squares convenience: fits to `targets` with unit hessians, so
    /// leaves hold (L2-shrunken) target means.
    pub fn fit_mean(rows: &[Vec<f64>], targets: &[f64], config: &TreeConfig) -> Self {
        let grads: Vec<f64> = targets.iter().map(|t| -t).collect();
        let hess = vec![1.0; targets.len()];
        Self::fit(rows, &grads, &hess, config)
    }

    /// Evaluate the tree on one row. Missing (out-of-range) features read
    /// as 0.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let x = row.get(*feature).copied().unwrap_or(0.0);
                    node = if x <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Accumulate per-feature split counts into `counts` (resized as
    /// needed) — the raw material of gain-free feature importance.
    pub fn accumulate_split_counts(&self, counts: &mut Vec<usize>) {
        fn walk(n: &Node, counts: &mut Vec<usize>) {
            if let Node::Split {
                feature,
                left,
                right,
                ..
            } = n
            {
                if counts.len() <= *feature {
                    counts.resize(feature + 1, 0);
                }
                counts[*feature] += 1;
                walk(left, counts);
                walk(right, counts);
            }
        }
        walk(&self.root, counts);
    }
}

fn leaf_value(idx: &[u32], grads: &[f64], hess: &[f64], lambda: f64) -> f64 {
    let mut g = 0.0;
    let mut h = 0.0;
    for &i in idx {
        g += grads[i as usize];
        h += hess[i as usize];
    }
    -g / (h + lambda)
}

fn node_score(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

fn build(
    rows: &[Vec<f64>],
    grads: &[f64],
    hess: &[f64],
    idx: Vec<u32>,
    depth_left: usize,
    config: &TreeConfig,
) -> Node {
    if depth_left == 0 || idx.len() < 2 * config.min_samples_leaf.max(1) {
        return Node::Leaf {
            value: leaf_value(&idx, grads, hess, config.lambda),
        };
    }
    let n_features = rows[idx[0] as usize].len();
    let (mut total_g, mut total_h) = (0.0, 0.0);
    for &i in &idx {
        total_g += grads[i as usize];
        total_h += hess[i as usize];
    }
    let parent_score = node_score(total_g, total_h, config.lambda);

    let mut best: Option<BestSplit> = None;
    let mut sorted = idx.clone();
    for f in 0..n_features {
        sorted.sort_unstable_by(|&a, &b| {
            rows[a as usize][f]
                .partial_cmp(&rows[b as usize][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let (mut gl, mut hl) = (0.0, 0.0);
        for pos in 0..sorted.len() - 1 {
            let i = sorted[pos] as usize;
            gl += grads[i];
            hl += hess[i];
            let here = rows[i][f];
            let next = rows[sorted[pos + 1] as usize][f];
            if here == next {
                continue; // can't split between equal values
            }
            let left_n = pos + 1;
            let right_n = sorted.len() - left_n;
            if left_n < config.min_samples_leaf || right_n < config.min_samples_leaf {
                continue;
            }
            let gain = node_score(gl, hl, config.lambda)
                + node_score(total_g - gl, total_h - hl, config.lambda)
                - parent_score;
            if gain > config.min_gain && best.as_ref().map_or(true, |b| gain > b.gain) {
                best = Some(BestSplit {
                    feature: f,
                    threshold: (here + next) / 2.0,
                    gain,
                });
            }
        }
    }

    match best {
        None => Node::Leaf {
            value: leaf_value(&idx, grads, hess, config.lambda),
        },
        Some(split) => {
            let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = idx
                .into_iter()
                .partition(|&i| rows[i as usize][split.feature] <= split.threshold);
            let left = build(rows, grads, hess, left_idx, depth_left - 1, config);
            let right = build(rows, grads, hess, right_idx, depth_left - 1, config);
            Node::Split {
                feature: split.feature,
                threshold: split.threshold,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TreeConfig {
        TreeConfig {
            max_depth: 4,
            min_samples_leaf: 1,
            lambda: 0.0,
            min_gain: 1e-12,
        }
    }

    #[test]
    fn single_leaf_is_mean() {
        let rows = vec![vec![0.0], vec![0.0], vec![0.0]];
        let t = RegressionTree::fit_mean(&rows, &[1.0, 2.0, 3.0], &cfg());
        // Identical features → no split possible → mean leaf.
        assert_eq!(t.n_leaves(), 1);
        assert!((t.predict(&[0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_step_function() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
        let t = RegressionTree::fit_mean(&rows, &targets, &cfg());
        assert!((t.predict(&[2.0]) - 0.0).abs() < 1e-9);
        assert!((t.predict(&[7.0]) - 10.0).abs() < 1e-9);
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn picks_informative_feature() {
        // Feature 0 is noise-free signal, feature 1 is constant.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![if i < 10 { 0.0 } else { 1.0 }, 5.0])
            .collect();
        let targets: Vec<f64> = (0..20).map(|i| if i < 10 { -1.0 } else { 1.0 }).collect();
        let t = RegressionTree::fit_mean(&rows, &targets, &cfg());
        assert!(t.predict(&[0.0, 5.0]) < 0.0);
        assert!(t.predict(&[1.0, 5.0]) > 0.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let shallow = TreeConfig {
            max_depth: 2,
            ..cfg()
        };
        let t = RegressionTree::fit_mean(&rows, &targets, &shallow);
        assert!(t.depth() <= 2);
        assert!(t.n_leaves() <= 4);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 100.0];
        let strict = TreeConfig {
            min_samples_leaf: 4,
            ..cfg()
        };
        let t = RegressionTree::fit_mean(&rows, &targets, &strict);
        // Only one split (4|4) is legal; the outlier cannot be isolated.
        assert!(t.n_leaves() <= 2);
    }

    #[test]
    fn lambda_shrinks_leaves() {
        let rows = vec![vec![0.0]];
        let no_reg = RegressionTree::fit_mean(&rows, &[10.0], &cfg());
        let reg = RegressionTree::fit_mean(
            &rows,
            &[10.0],
            &TreeConfig {
                lambda: 9.0,
                ..cfg()
            },
        );
        assert!((no_reg.predict(&[0.0]) - 10.0).abs() < 1e-12);
        assert!((reg.predict(&[0.0]) - 1.0).abs() < 1e-12); // 10 / (1 + 9)
    }

    #[test]
    fn newton_leaf_value() {
        // grads [-2,-4], hess [1,1], lambda 0 → leaf = 6/2 = 3
        let rows = vec![vec![0.0], vec![0.0]];
        let t = RegressionTree::fit(&rows, &[-2.0, -4.0], &[1.0, 1.0], &cfg());
        assert!((t.predict(&[0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_feature_reads_zero() {
        let rows: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let t = RegressionTree::fit_mean(&rows, &[0.0, 0.0, 1.0, 1.0], &cfg());
        // Row with no features: feature 0 reads 0.0 → left branch.
        let empty: Vec<f64> = vec![];
        assert!((t.predict(&empty) - t.predict(&[0.0])).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let _ = RegressionTree::fit(&[], &[], &[], &cfg());
    }
}

//! Pairwise-logistic linear ranker (RankNet with a linear scoring
//! function). The ablation baseline for LambdaMART in the LHS strategy:
//! same training pairs, no trees, no ΔNDCG weighting.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::RankingDataset;
use crate::Ranker;

/// Hyper-parameters for [`LinearRanker::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRankerConfig {
    /// SGD epochs over all pairs.
    pub epochs: usize,
    /// SGD step size.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LinearRankerConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            lr: 0.05,
            l2: 1e-4,
        }
    }
}

/// A linear scoring function `s(x) = w·x` trained on pairwise preferences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRanker {
    weights: Vec<f64>,
}

impl LinearRanker {
    /// Train with pairwise logistic loss over all preference pairs in all
    /// trainable groups. Deterministic given `rng`.
    pub fn fit<R: Rng + ?Sized>(
        dataset: &RankingDataset,
        config: &LinearRankerConfig,
        rng: &mut R,
    ) -> Self {
        let dim = dataset.n_features();
        let mut weights = vec![0.0; dim];
        // Materialize preference pairs (hi, lo) as (group, i, j).
        let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
        for (gi, g) in dataset.groups.iter().enumerate() {
            for i in 0..g.len() {
                for j in 0..g.len() {
                    if g.relevance[i] > g.relevance[j] {
                        pairs.push((gi, i, j));
                    }
                }
            }
        }
        if pairs.is_empty() {
            return Self { weights };
        }
        for _ in 0..config.epochs {
            for k in (1..pairs.len()).rev() {
                let j = rng.gen_range(0..=k);
                pairs.swap(k, j);
            }
            for &(gi, i, j) in &pairs {
                let g = &dataset.groups[gi];
                let (xi, xj) = (&g.features[i], &g.features[j]);
                let margin: f64 = xi
                    .iter()
                    .zip(xj)
                    .zip(&weights)
                    .map(|((a, b), w)| w * (a - b))
                    .sum();
                // d/dw of log(1 + e^{-margin})
                let coeff = -1.0 / (1.0 + margin.exp());
                for ((w, a), b) in weights.iter_mut().zip(xi).zip(xj) {
                    *w -= config.lr * (coeff * (a - b) + config.l2 * *w);
                }
            }
        }
        Self { weights }
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Ranker for LinearRanker {
    fn score(&self, features: &[f64]) -> f64 {
        features.iter().zip(&self.weights).map(|(x, w)| x * w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryGroup;
    use crate::metrics::ndcg_of_ranking;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    fn monotone_dataset() -> RankingDataset {
        let mut ds = RankingDataset::new();
        for q in 0..6 {
            let features: Vec<Vec<f64>> = (0..6)
                .map(|d| vec![d as f64 + q as f64 * 0.1, 1.0])
                .collect();
            let relevance: Vec<f64> = (0..6).map(|d| d as f64).collect();
            ds.push(QueryGroup::new(features, relevance));
        }
        ds
    }

    #[test]
    fn learns_positive_weight_on_signal() {
        let ds = monotone_dataset();
        let model = LinearRanker::fit(&ds, &LinearRankerConfig::default(), &mut rng());
        assert!(model.weights()[0] > 0.0);
        let g = &ds.groups[0];
        let scores = model.score_batch(&g.features);
        assert!(ndcg_of_ranking(&scores, &g.relevance, g.len()) > 0.95);
    }

    #[test]
    fn anti_correlated_feature_gets_negative_weight() {
        let mut ds = RankingDataset::new();
        let features: Vec<Vec<f64>> = (0..6).map(|d| vec![-(d as f64)]).collect();
        let relevance: Vec<f64> = (0..6).map(|d| d as f64).collect();
        ds.push(QueryGroup::new(features, relevance));
        let model = LinearRanker::fit(&ds, &LinearRankerConfig::default(), &mut rng());
        assert!(model.weights()[0] < 0.0);
    }

    #[test]
    fn empty_dataset_gives_zero_scorer() {
        let model = LinearRanker::fit(
            &RankingDataset::new(),
            &LinearRankerConfig::default(),
            &mut rng(),
        );
        assert_eq!(model.score(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn degenerate_groups_give_zero_scorer() {
        let mut ds = RankingDataset::new();
        ds.push(QueryGroup::new(vec![vec![1.0], vec![2.0]], vec![1.0, 1.0]));
        let model = LinearRanker::fit(&ds, &LinearRankerConfig::default(), &mut rng());
        assert_eq!(model.weights(), &[0.0]);
    }

    #[test]
    fn deterministic_with_seed() {
        let ds = monotone_dataset();
        let a = LinearRanker::fit(&ds, &LinearRankerConfig::default(), &mut rng());
        let b = LinearRanker::fit(&ds, &LinearRankerConfig::default(), &mut rng());
        assert_eq!(a.weights(), b.weights());
    }
}

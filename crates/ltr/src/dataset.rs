//! Query-grouped ranking datasets.

use serde::{Deserialize, Serialize};

/// One query group: a set of documents (feature rows) with graded
/// relevance labels, to be ranked against each other.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryGroup {
    /// One feature vector per document; all rows must share a width.
    pub features: Vec<Vec<f64>>,
    /// Graded relevance per document (0 = irrelevant; higher = better).
    pub relevance: Vec<f64>,
}

impl QueryGroup {
    /// Build a group, validating shape.
    ///
    /// # Panics
    /// Panics if `features` and `relevance` lengths differ or rows have
    /// inconsistent widths.
    pub fn new(features: Vec<Vec<f64>>, relevance: Vec<f64>) -> Self {
        assert_eq!(
            features.len(),
            relevance.len(),
            "feature rows and relevance labels must align"
        );
        if let Some(first) = features.first() {
            let w = first.len();
            assert!(
                features.iter().all(|r| r.len() == w),
                "all feature rows in a group must have the same width"
            );
        }
        Self {
            features,
            relevance,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.relevance.len()
    }

    /// True when the group has no documents.
    pub fn is_empty(&self) -> bool {
        self.relevance.is_empty()
    }

    /// True when every document has the same relevance (no learnable
    /// ordering signal).
    pub fn is_degenerate(&self) -> bool {
        self.relevance
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < f64::EPSILON)
    }
}

/// A collection of query groups plus the shared feature width.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RankingDataset {
    pub groups: Vec<QueryGroup>,
}

impl RankingDataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a group, skipping empty ones.
    pub fn push(&mut self, group: QueryGroup) {
        if !group.is_empty() {
            self.groups.push(group);
        }
    }

    /// Total number of documents across groups.
    pub fn n_docs(&self) -> usize {
        self.groups.iter().map(QueryGroup::len).sum()
    }

    /// Feature width, or 0 for an empty dataset.
    pub fn n_features(&self) -> usize {
        self.groups
            .iter()
            .find_map(|g| g.features.first().map(Vec::len))
            .unwrap_or(0)
    }

    /// Groups that actually carry an ordering signal.
    pub fn trainable_groups(&self) -> impl Iterator<Item = &QueryGroup> {
        self.groups.iter().filter(|g| !g.is_degenerate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_alignment() {
        let g = QueryGroup::new(vec![vec![1.0], vec![2.0]], vec![0.0, 1.0]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = QueryGroup::new(vec![vec![1.0]], vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn ragged_rows_panic() {
        let _ = QueryGroup::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]);
    }

    #[test]
    fn degenerate_detection() {
        let flat = QueryGroup::new(vec![vec![1.0], vec![2.0]], vec![1.0, 1.0]);
        assert!(flat.is_degenerate());
        let graded = QueryGroup::new(vec![vec![1.0], vec![2.0]], vec![0.0, 2.0]);
        assert!(!graded.is_degenerate());
    }

    #[test]
    fn dataset_skips_empty_groups_and_counts() {
        let mut ds = RankingDataset::new();
        ds.push(QueryGroup::default());
        ds.push(QueryGroup::new(vec![vec![1.0, 2.0]], vec![1.0]));
        assert_eq!(ds.groups.len(), 1);
        assert_eq!(ds.n_docs(), 1);
        assert_eq!(ds.n_features(), 2);
    }

    #[test]
    fn trainable_groups_filters_degenerate() {
        let mut ds = RankingDataset::new();
        ds.push(QueryGroup::new(vec![vec![0.0], vec![1.0]], vec![1.0, 1.0]));
        ds.push(QueryGroup::new(vec![vec![0.0], vec![1.0]], vec![0.0, 1.0]));
        assert_eq!(ds.trainable_groups().count(), 1);
    }
}

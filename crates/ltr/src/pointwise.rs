//! Pointwise regression ranking — the LAL substrate.
//!
//! Where LambdaMART learns *pairwise order* within query groups, the LAL
//! formulation ("Learning Active Learning from Data", Konyushkova et
//! al.) regresses the expected error reduction of each candidate
//! directly: flat `(features, delta)` pairs, no groups. Ranking by the
//! predicted delta is then just sorting by the regression output, so the
//! fitted model implements [`Ranker`] like everything else in this
//! crate.
//!
//! Two fits reuse the existing machinery:
//!
//! * [`PointwiseRegressor::fit_trees`] — gradient-boosted
//!   [`RegressionTree::fit_mean`] trees on the residuals (the
//!   least-squares special case of the Newton trees LambdaMART uses);
//! * [`PointwiseRegressor::fit_linear`] — ridge least squares via the
//!   normal equations (deterministic, no RNG), the linear counterpart of
//!   the pairwise-logistic ablation ranker.

use serde::{Deserialize, Serialize};

use crate::tree::{RegressionTree, TreeConfig};
use crate::Ranker;

/// Hyper-parameters for the boosted-tree pointwise fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointwiseConfig {
    /// Boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's output.
    pub learning_rate: f64,
    /// Tree induction parameters.
    pub tree: TreeConfig,
    /// Ridge strength for [`PointwiseRegressor::fit_linear`].
    pub l2: f64,
}

impl Default for PointwiseConfig {
    fn default() -> Self {
        Self {
            n_trees: 30,
            learning_rate: 0.1,
            tree: TreeConfig::default(),
            l2: 1.0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum PointwiseModel {
    /// Degenerate fit (no training rows): predict a constant.
    Constant { value: f64 },
    /// Boosted residual trees around a base prediction.
    Trees {
        base: f64,
        learning_rate: f64,
        trees: Vec<RegressionTree>,
    },
    /// Ridge least squares: `w · x + bias`.
    Linear { weights: Vec<f64>, bias: f64 },
}

/// A fitted pointwise regression ranker (see the module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointwiseRegressor {
    model: PointwiseModel,
}

impl PointwiseRegressor {
    /// Gradient-boosted regression-tree fit: start from the target mean,
    /// then fit `n_trees` mean-leaf trees to the shrinking residuals.
    /// Zero rows yield a constant-zero model instead of panicking, so a
    /// degenerate training simulation still produces a usable selector.
    ///
    /// # Panics
    /// Panics if `rows` and `targets` are misaligned.
    pub fn fit_trees(rows: &[Vec<f64>], targets: &[f64], config: &PointwiseConfig) -> Self {
        assert_eq!(rows.len(), targets.len(), "rows/targets misaligned");
        if rows.is_empty() {
            return Self {
                model: PointwiseModel::Constant { value: 0.0 },
            };
        }
        let base = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut residuals: Vec<f64> = targets.iter().map(|&t| t - base).collect();
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            let tree = RegressionTree::fit_mean(rows, &residuals, &config.tree);
            for (row, r) in rows.iter().zip(residuals.iter_mut()) {
                *r -= config.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Self {
            model: PointwiseModel::Trees {
                base,
                learning_rate: config.learning_rate,
                trees,
            },
        }
    }

    /// Ridge least squares via the normal equations
    /// `(XᵀX + l2·I)·w = Xᵀy` (bias column unregularized), solved by
    /// Gaussian elimination with partial pivoting — deterministic and
    /// exact for the small feature widths the learned selectors use.
    /// Zero rows yield a constant-zero model.
    ///
    /// # Panics
    /// Panics if `rows` and `targets` are misaligned or rows are ragged.
    pub fn fit_linear(rows: &[Vec<f64>], targets: &[f64], l2: f64) -> Self {
        assert_eq!(rows.len(), targets.len(), "rows/targets misaligned");
        if rows.is_empty() {
            return Self {
                model: PointwiseModel::Constant { value: 0.0 },
            };
        }
        let d = rows[0].len();
        for row in rows {
            assert_eq!(row.len(), d, "ragged feature rows");
        }
        // Augmented design: d feature columns + 1 bias column.
        let dim = d + 1;
        let mut ata = vec![vec![0.0; dim]; dim];
        let mut aty = vec![0.0; dim];
        let mut aug = vec![0.0; dim];
        for (row, &y) in rows.iter().zip(targets) {
            aug[..d].copy_from_slice(row);
            aug[d] = 1.0;
            for i in 0..dim {
                for j in 0..dim {
                    ata[i][j] += aug[i] * aug[j];
                }
                aty[i] += aug[i] * y;
            }
        }
        for (i, row) in ata.iter_mut().enumerate().take(d) {
            row[i] += l2;
        }
        let solution = solve(&mut ata, &mut aty);
        match solution {
            Some(w) => Self {
                model: PointwiseModel::Linear {
                    bias: w[d],
                    weights: w[..d].to_vec(),
                },
            },
            // Singular system (e.g. l2 = 0 with collinear features):
            // fall back to predicting the target mean.
            None => Self {
                model: PointwiseModel::Constant {
                    value: targets.iter().sum::<f64>() / targets.len() as f64,
                },
            },
        }
    }

    /// Predicted target for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        match &self.model {
            PointwiseModel::Constant { value } => *value,
            PointwiseModel::Trees {
                base,
                learning_rate,
                trees,
            } => {
                let mut y = *base;
                for tree in trees {
                    y += learning_rate * tree.predict(row);
                }
                y
            }
            PointwiseModel::Linear { weights, bias } => {
                let mut y = *bias;
                for (i, w) in weights.iter().enumerate() {
                    y += w * row.get(i).copied().unwrap_or(0.0);
                }
                y
            }
        }
    }

    /// Number of boosted trees (0 for linear/constant models).
    pub fn n_trees(&self) -> usize {
        match &self.model {
            PointwiseModel::Trees { trees, .. } => trees.len(),
            _ => 0,
        }
    }
}

impl Ranker for PointwiseRegressor {
    fn score(&self, features: &[f64]) -> f64 {
        self.predict(features)
    }
}

/// Solve `A·x = b` in place by Gaussian elimination with partial
/// pivoting. Returns `None` for a (numerically) singular system.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        let (b_pivot, b_rest) = b.split_at_mut(col + 1);
        let b_col = b_pivot[col];
        for (row, b_row) in rest.iter_mut().zip(b_rest.iter_mut()) {
            let factor = row[col] / pivot_row[col];
            if factor == 0.0 {
                continue;
            }
            for (v, p) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                *v -= factor * p;
            }
            *b_row -= factor * b_col;
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in col + 1..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PointwiseConfig {
        PointwiseConfig {
            n_trees: 50,
            learning_rate: 0.3,
            tree: TreeConfig {
                max_depth: 3,
                min_samples_leaf: 1,
                lambda: 0.0,
                min_gain: 1e-12,
            },
            l2: 1e-6,
        }
    }

    #[test]
    fn trees_fit_step_function() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let m = PointwiseRegressor::fit_trees(&rows, &targets, &cfg());
        assert!(m.predict(&[3.0]) < 0.2, "{}", m.predict(&[3.0]));
        assert!(m.predict(&[15.0]) > 0.8, "{}", m.predict(&[15.0]));
        assert_eq!(m.n_trees(), 50);
    }

    #[test]
    fn trees_ranking_order_follows_targets() {
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let targets: Vec<f64> = (0..12).map(|i| i as f64 * 0.01).collect();
        let m = PointwiseRegressor::fit_trees(&rows, &targets, &cfg());
        let scores = m.score_batch(&rows);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 11);
    }

    #[test]
    fn linear_recovers_plane() {
        // y = 2x0 - 3x1 + 0.5; tiny ridge keeps the solve stable without
        // visibly biasing the coefficients.
        let rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 0.5).collect();
        let m = PointwiseRegressor::fit_linear(&rows, &targets, 1e-9);
        for (row, &t) in rows.iter().zip(&targets) {
            assert!((m.predict(row) - t).abs() < 1e-6, "{row:?}");
        }
    }

    #[test]
    fn empty_fit_is_constant_zero() {
        let trees = PointwiseRegressor::fit_trees(&[], &[], &cfg());
        assert_eq!(trees.predict(&[1.0, 2.0]), 0.0);
        let linear = PointwiseRegressor::fit_linear(&[], &[], 1.0);
        assert_eq!(linear.predict(&[1.0]), 0.0);
    }

    #[test]
    fn singular_linear_falls_back_to_mean() {
        // Identical rows with l2 = 0: XᵀX is singular, the fit degrades
        // to the target mean instead of NaN.
        let rows = vec![vec![1.0, 2.0]; 4];
        let m = PointwiseRegressor::fit_linear(&rows, &[1.0, 2.0, 3.0, 4.0], 0.0);
        let p = m.predict(&[1.0, 2.0]);
        assert!(p.is_finite());
        assert!((p - 2.5).abs() < 1e-9, "{p}");
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let m = PointwiseRegressor::fit_trees(&rows, &targets, &cfg());
        let json = serde_json::to_string(&m).expect("serialize");
        let back: PointwiseRegressor = serde_json::from_str(&json).expect("deserialize");
        for row in &rows {
            assert_eq!(m.predict(row), back.predict(row));
        }
    }
}

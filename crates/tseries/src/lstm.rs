//! A small scalar-sequence LSTM used to predict the next evaluation score.
//!
//! The paper trains "a simple LSTM" on historical evaluation sequences: the
//! scores of the past `k` iterations are the input and the current score is
//! the regression target. The history sequences here are scalar and short
//! (tens of steps), so a hand-written single-layer LSTM with full
//! backpropagation-through-time and Adam is both faithful and fast — no
//! tensor framework required (the calibration note flags candle/tch as
//! immature for exactly this kind of loop).

#![allow(clippy::needless_range_loop)]

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::SequencePredictor;

/// Hyper-parameters for [`LstmPredictor::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Hidden state width.
    pub hidden: usize,
    /// Input window length `k`: the last `k` scores predict the next one.
    pub window: usize,
    /// Training epochs over the extracted windows.
    pub epochs: usize,
    /// Adam step size.
    pub lr: f64,
    /// Gradient L2-norm clip; 0 disables clipping.
    pub clip: f64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            hidden: 8,
            window: 5,
            epochs: 30,
            lr: 0.02,
            clip: 5.0,
        }
    }
}

/// Flat parameter block: the four gate weight matrices stacked as
/// `[i; f; o; g]`, each `hidden × (1 + hidden)`, the gate biases, and the
/// scalar output head.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Params {
    hidden: usize,
    /// `4*hidden` rows × `(1 + hidden)` columns, row-major.
    w: Vec<f64>,
    /// `4*hidden` gate biases.
    b: Vec<f64>,
    /// Output head weights (`hidden`) and bias.
    wy: Vec<f64>,
    by: f64,
}

impl Params {
    fn zeros(hidden: usize) -> Self {
        Self {
            hidden,
            w: vec![0.0; 4 * hidden * (1 + hidden)],
            b: vec![0.0; 4 * hidden],
            wy: vec![0.0; hidden],
            by: 0.0,
        }
    }

    fn init<R: Rng + ?Sized>(hidden: usize, rng: &mut R) -> Self {
        let mut p = Self::zeros(hidden);
        let scale = 1.0 / ((1 + hidden) as f64).sqrt();
        for w in &mut p.w {
            *w = rng.gen_range(-scale..scale);
        }
        for w in &mut p.wy {
            *w = rng.gen_range(-scale..scale);
        }
        // Forget-gate bias of 1.0 (standard initialization) so gradients
        // flow through short sequences from the first epoch.
        for j in 0..hidden {
            p.b[hidden + j] = 1.0;
        }
        p
    }

    /// Iterate all parameters as one flat view for the optimizer.
    fn len(&self) -> usize {
        self.w.len() + self.b.len() + self.wy.len() + 1
    }

    fn get(&self, i: usize) -> f64 {
        let (nw, nb, ny) = (self.w.len(), self.b.len(), self.wy.len());
        if i < nw {
            self.w[i]
        } else if i < nw + nb {
            self.b[i - nw]
        } else if i < nw + nb + ny {
            self.wy[i - nw - nb]
        } else {
            self.by
        }
    }

    fn get_mut(&mut self, i: usize) -> &mut f64 {
        let (nw, nb, ny) = (self.w.len(), self.b.len(), self.wy.len());
        if i < nw {
            &mut self.w[i]
        } else if i < nw + nb {
            &mut self.b[i - nw]
        } else if i < nw + nb + ny {
            &mut self.wy[i - nw - nb]
        } else {
            &mut self.by
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-step forward activations retained for BPTT.
struct StepCache {
    x: f64,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c: Vec<f64>,
    h: Vec<f64>,
}

/// An LSTM regression model over scalar sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmPredictor {
    params: Params,
    config: LstmConfig,
    /// Mean training target — fallback prediction for empty histories.
    fallback: f64,
}

impl LstmPredictor {
    /// Train on `sequences`: every window of `config.window` consecutive
    /// scores predicts the following score. Deterministic given `rng`.
    pub fn fit<R: Rng + ?Sized>(sequences: &[Vec<f64>], config: LstmConfig, rng: &mut R) -> Self {
        assert!(config.hidden > 0, "hidden size must be positive");
        assert!(config.window > 0, "window must be positive");
        let mut pairs: Vec<(Vec<f64>, f64)> = Vec::new();
        for seq in sequences {
            if seq.len() < 2 {
                continue;
            }
            for t in 1..seq.len() {
                let start = t.saturating_sub(config.window);
                pairs.push((seq[start..t].to_vec(), seq[t]));
            }
        }
        let fallback = if pairs.is_empty() {
            0.0
        } else {
            pairs.iter().map(|(_, y)| *y).sum::<f64>() / pairs.len() as f64
        };
        let mut model = Self {
            params: Params::init(config.hidden, rng),
            config,
            fallback,
        };
        if pairs.is_empty() {
            return model;
        }
        let n = model.params.len();
        let (mut m1, mut m2) = (vec![0.0; n], vec![0.0; n]);
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);
        let mut step = 0usize;
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..model.config.epochs {
            // Fisher–Yates shuffle for SGD order.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                let (window, target) = &pairs[idx];
                let grads = model.backward(window, *target);
                step += 1;
                let lr = model.config.lr;
                let clip = model.config.clip;
                let mut norm = 0.0;
                for g in grads.iter() {
                    norm += g * g;
                }
                norm = norm.sqrt();
                let scale = if clip > 0.0 && norm > clip {
                    clip / norm
                } else {
                    1.0
                };
                for i in 0..n {
                    let g = grads[i] * scale;
                    m1[i] = b1 * m1[i] + (1.0 - b1) * g;
                    m2[i] = b2 * m2[i] + (1.0 - b2) * g * g;
                    let mh = m1[i] / (1.0 - b1.powi(step as i32));
                    let vh = m2[i] / (1.0 - b2.powi(step as i32));
                    *model.params.get_mut(i) -= lr * mh / (vh.sqrt() + eps);
                }
            }
        }
        model
    }

    /// Mean squared error over the window/target pairs extractable from
    /// `sequences` — convenience for tests and tuning.
    pub fn mse(&self, sequences: &[Vec<f64>]) -> f64 {
        let mut acc = 0.0;
        let mut count = 0usize;
        for seq in sequences {
            for t in 1..seq.len() {
                let start = t.saturating_sub(self.config.window);
                let pred = self.forward(&seq[start..t]).0;
                let d = pred - seq[t];
                acc += d * d;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            acc / count as f64
        }
    }

    /// Forward pass; returns `(prediction, caches)`.
    fn forward(&self, window: &[f64]) -> (f64, Vec<StepCache>) {
        let h_dim = self.params.hidden;
        let mut h = vec![0.0; h_dim];
        let mut c = vec![0.0; h_dim];
        let mut caches = Vec::with_capacity(window.len());
        for &x in window {
            let mut cache = StepCache {
                x,
                h_prev: h.clone(),
                c_prev: c.clone(),
                i: vec![0.0; h_dim],
                f: vec![0.0; h_dim],
                o: vec![0.0; h_dim],
                g: vec![0.0; h_dim],
                c: vec![0.0; h_dim],
                h: vec![0.0; h_dim],
            };
            let in_dim = 1 + h_dim;
            for gate in 0..4 {
                for j in 0..h_dim {
                    let row = gate * h_dim + j;
                    let base = row * in_dim;
                    let mut a = self.params.b[row] + self.params.w[base] * x;
                    for (k, &hv) in h.iter().enumerate() {
                        a += self.params.w[base + 1 + k] * hv;
                    }
                    let v = if gate == 3 { a.tanh() } else { sigmoid(a) };
                    match gate {
                        0 => cache.i[j] = v,
                        1 => cache.f[j] = v,
                        2 => cache.o[j] = v,
                        _ => cache.g[j] = v,
                    }
                }
            }
            for j in 0..h_dim {
                cache.c[j] = cache.f[j] * c[j] + cache.i[j] * cache.g[j];
                cache.h[j] = cache.o[j] * cache.c[j].tanh();
            }
            h = cache.h.clone();
            c = cache.c.clone();
            caches.push(cache);
        }
        let mut y = self.params.by;
        for j in 0..h_dim {
            y += self.params.wy[j] * h[j];
        }
        (y, caches)
    }

    /// Full BPTT for one `(window, target)` pair; returns the flat gradient
    /// (same layout as [`Params`]).
    fn backward(&self, window: &[f64], target: f64) -> Vec<f64> {
        let h_dim = self.params.hidden;
        let in_dim = 1 + h_dim;
        let (pred, caches) = self.forward(window);
        let mut grads = Params::zeros(h_dim);
        let dy = pred - target; // d(0.5*(pred-y)^2)/dpred
        grads.by = dy;
        let last_h: Vec<f64> = caches
            .last()
            .map(|c| c.h.clone())
            .unwrap_or_else(|| vec![0.0; h_dim]);
        for j in 0..h_dim {
            grads.wy[j] = dy * last_h[j];
        }
        let mut dh: Vec<f64> = self.params.wy.iter().map(|w| dy * w).collect();
        let mut dc = vec![0.0; h_dim];
        for cache in caches.iter().rev() {
            let mut dh_prev = vec![0.0; h_dim];
            let mut dc_prev = vec![0.0; h_dim];
            for j in 0..h_dim {
                let tanh_c = cache.c[j].tanh();
                let do_j = dh[j] * tanh_c;
                let dcj = dc[j] + dh[j] * cache.o[j] * (1.0 - tanh_c * tanh_c);
                let di = dcj * cache.g[j];
                let df = dcj * cache.c_prev[j];
                let dg = dcj * cache.i[j];
                dc_prev[j] = dcj * cache.f[j];
                // Pre-activation gradients.
                let dai = di * cache.i[j] * (1.0 - cache.i[j]);
                let daf = df * cache.f[j] * (1.0 - cache.f[j]);
                let dao = do_j * cache.o[j] * (1.0 - cache.o[j]);
                let dag = dg * (1.0 - cache.g[j] * cache.g[j]);
                for (gate, da) in [(0, dai), (1, daf), (2, dao), (3, dag)] {
                    let row = gate * h_dim + j;
                    let base = row * in_dim;
                    grads.b[row] += da;
                    grads.w[base] += da * cache.x;
                    for k in 0..h_dim {
                        grads.w[base + 1 + k] += da * cache.h_prev[k];
                        dh_prev[k] += da * self.params.w[base + 1 + k];
                    }
                }
            }
            dh = dh_prev;
            dc = dc_prev;
        }
        (0..grads.len()).map(|i| grads.get(i)).collect()
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.config.window
    }
}

impl SequencePredictor for LstmPredictor {
    fn predict_next(&self, seq: &[f64]) -> f64 {
        if seq.is_empty() {
            return self.fallback;
        }
        let start = seq.len().saturating_sub(self.config.window);
        let (y, _) = self.forward(&seq[start..]);
        if y.is_finite() {
            y
        } else {
            self.fallback
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    /// Numerical gradient check: the analytic BPTT gradient must match the
    /// central finite difference on every parameter of a tiny net.
    #[test]
    fn gradient_check() {
        let mut r = rng();
        let config = LstmConfig {
            hidden: 3,
            window: 4,
            epochs: 0,
            lr: 0.0,
            clip: 0.0,
        };
        let model = LstmPredictor {
            params: Params::init(3, &mut r),
            config,
            fallback: 0.0,
        };
        let window = [0.2, -0.4, 0.9, 0.1];
        let target = 0.5;
        let analytic = model.backward(&window, target);
        let eps = 1e-6;
        for p_idx in 0..model.params.len() {
            let mut plus = model.clone();
            *plus.params.get_mut(p_idx) += eps;
            let mut minus = model.clone();
            *minus.params.get_mut(p_idx) -= eps;
            let lp = {
                let (y, _) = plus.forward(&window);
                0.5 * (y - target) * (y - target)
            };
            let lm = {
                let (y, _) = minus.forward(&window);
                0.5 * (y - target) * (y - target)
            };
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[p_idx]).abs() < 1e-4,
                "param {p_idx}: numeric {numeric} vs analytic {}",
                analytic[p_idx]
            );
        }
    }

    #[test]
    fn learns_constant_sequence() {
        let seqs = vec![vec![0.7; 12]; 8];
        let model = LstmPredictor::fit(&seqs, LstmConfig::default(), &mut rng());
        let pred = model.predict_next(&[0.7, 0.7, 0.7, 0.7]);
        assert!((pred - 0.7).abs() < 0.05, "pred {pred}");
    }

    #[test]
    fn learns_linear_trend_better_than_mean() {
        // Sequences increasing by 0.05 per step from varied starts.
        let seqs: Vec<Vec<f64>> = (0..20)
            .map(|s| (0..15).map(|t| 0.01 * s as f64 + 0.05 * t as f64).collect())
            .collect();
        let model = LstmPredictor::fit(&seqs, LstmConfig::default(), &mut rng());
        let trained_mse = model.mse(&seqs);
        // Baseline: always predict the corpus mean.
        let all: Vec<f64> = seqs.iter().flatten().copied().collect();
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        let mut base = 0.0;
        let mut n = 0;
        for s in &seqs {
            for t in 1..s.len() {
                base += (mean - s[t]) * (mean - s[t]);
                n += 1;
            }
        }
        base /= n as f64;
        assert!(
            trained_mse < base * 0.5,
            "mse {trained_mse} vs mean-baseline {base}"
        );
    }

    #[test]
    fn empty_history_predicts_fallback() {
        let seqs = vec![vec![0.3, 0.3, 0.3]];
        let model = LstmPredictor::fit(&seqs, LstmConfig::default(), &mut rng());
        assert!((model.predict_next(&[]) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn no_training_data_is_safe() {
        let model = LstmPredictor::fit(&[], LstmConfig::default(), &mut rng());
        assert_eq!(model.predict_next(&[]), 0.0);
        assert!(model.predict_next(&[0.5]).is_finite());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let seqs = vec![vec![0.1, 0.5, 0.2, 0.8, 0.4]; 4];
        let a = LstmPredictor::fit(&seqs, LstmConfig::default(), &mut rng());
        let b = LstmPredictor::fit(&seqs, LstmConfig::default(), &mut rng());
        assert_eq!(a.predict_next(&[0.3, 0.9]), b.predict_next(&[0.3, 0.9]));
    }
}

//! Windowed views and weighted sums over score sequences.
//!
//! WSHS (paper Eq. 9–10) scores a sample by
//! `Σ_{j=t-l+1..t} 2^{j-t} · φ_j(x)`: the most recent score has weight 1,
//! the one before 1/2, then 1/4, …, truncated to a window of the last `l`
//! iterations. With `l = 1` this degrades to the base strategy.

/// The last `min(l, seq.len())` elements of `seq`, oldest first.
///
/// An `l` of zero returns the empty slice.
pub fn last_window(seq: &[f64], l: usize) -> &[f64] {
    let start = seq.len().saturating_sub(l);
    &seq[start..]
}

/// The exponential weights of Eq. 10 for a window of length `n`, oldest
/// first: `[2^{-(n-1)}, …, 1/4, 1/2, 1]`.
pub fn exp_weights(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (2f64).powi(i as i32 - (n as i32 - 1)))
        .collect()
}

/// WSHS score: exponentially weighted sum of the last `l` elements
/// (Eq. 9–10). Empty sequences score 0.
///
/// ```
/// use histal_tseries::exp_weighted_sum;
/// let h = [0.1, 0.2, 0.4];
/// // 0.25*0.1 + 0.5*0.2 + 1.0*0.4
/// assert!((exp_weighted_sum(&h, 3) - 0.525).abs() < 1e-12);
/// // l = 1 degrades to the current score.
/// assert_eq!(exp_weighted_sum(&h, 1), 0.4);
/// ```
pub fn exp_weighted_sum(seq: &[f64], l: usize) -> f64 {
    let w = last_window(seq, l);
    let mut acc = 0.0;
    let mut weight = 1.0;
    for &v in w.iter().rev() {
        acc += weight * v;
        weight *= 0.5;
    }
    acc
}

/// HUS-style plain sum of the last `l` elements (Davy & Luz 2007): every
/// historical score weighted equally.
pub fn uniform_sum(seq: &[f64], l: usize) -> f64 {
    last_window(seq, l).iter().sum()
}

/// The last `min(l, |front| + |back|)` elements of the logical sequence
/// `front ++ back`, still as two slices — the split view a ring-buffered
/// history hands out without materializing the concatenation.
pub fn last_window_parts<'a>(
    front: &'a [f64],
    back: &'a [f64],
    l: usize,
) -> (&'a [f64], &'a [f64]) {
    let total = front.len() + back.len();
    let start = total.saturating_sub(l);
    if start >= front.len() {
        (&[], &back[start - front.len()..])
    } else {
        (&front[start..], back)
    }
}

/// [`exp_weighted_sum`] over the split sequence `front ++ back`.
/// Accumulates newest → oldest exactly like the contiguous fold, so the
/// result is bit-identical to `exp_weighted_sum(&concat, l)` — pinned by
/// proptest in `tests/rolling_props.rs`.
pub fn exp_weighted_sum_parts(front: &[f64], back: &[f64], l: usize) -> f64 {
    let (f, b) = last_window_parts(front, back, l);
    let mut acc = 0.0;
    let mut weight = 1.0;
    for &v in b.iter().rev().chain(f.iter().rev()) {
        acc += weight * v;
        weight *= 0.5;
    }
    acc
}

/// [`uniform_sum`] over the split sequence `front ++ back`; bit-identical
/// to the contiguous fold (same left-to-right addition order).
pub fn uniform_sum_parts(front: &[f64], back: &[f64], l: usize) -> f64 {
    let (f, b) = last_window_parts(front, back, l);
    f.iter().chain(b.iter()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_shorter_than_l() {
        assert_eq!(last_window(&[1.0, 2.0], 5), &[1.0, 2.0]);
    }

    #[test]
    fn window_exact_and_truncated() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(last_window(&s, 2), &[3.0, 4.0]);
        assert_eq!(last_window(&s, 4), &s[..]);
        assert!(last_window(&s, 0).is_empty());
    }

    #[test]
    fn weights_are_powers_of_two() {
        assert_eq!(exp_weights(3), vec![0.25, 0.5, 1.0]);
        assert_eq!(exp_weights(1), vec![1.0]);
        assert!(exp_weights(0).is_empty());
    }

    #[test]
    fn weighted_sum_matches_explicit_weights() {
        let s = [0.3, 0.7, 0.5, 0.9];
        let l = 3;
        let w = exp_weights(l);
        let window = last_window(&s, l);
        let expected: f64 = w.iter().zip(window).map(|(a, b)| a * b).sum();
        assert!((exp_weighted_sum(&s, l) - expected).abs() < 1e-12);
    }

    #[test]
    fn l1_degrades_to_current_score() {
        assert_eq!(exp_weighted_sum(&[0.2, 0.8], 1), 0.8);
    }

    #[test]
    fn empty_sequence_scores_zero() {
        assert_eq!(exp_weighted_sum(&[], 3), 0.0);
        assert_eq!(uniform_sum(&[], 3), 0.0);
    }

    #[test]
    fn uniform_sum_is_plain_sum() {
        assert!((uniform_sum(&[1.0, 2.0, 3.0], 2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn recent_scores_dominate() {
        // Same current score, historically-high sample must win under WSHS.
        let stable_high = [0.69, 0.68, 0.69, 0.68, 0.69];
        let late_spike = [0.33, 0.42, 0.58, 0.54, 0.69];
        assert!(exp_weighted_sum(&stable_high, 5) > exp_weighted_sum(&late_spike, 5));
    }
}

//! Mann–Kendall trend test (Hamed & Rao 1998 variant without the
//! autocorrelation correction; ties handled in the variance term).
//!
//! The LHS strategy uses the MK statistic to characterize whether a
//! sample's evaluation sequence is increasing, decreasing, or trendless —
//! e.g. for an entropy sequence an increasing trend means the model grows
//! *less* certain about the sample as training progresses.

use serde::{Deserialize, Serialize};

/// Qualitative trend classification at a given significance threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trend {
    /// Significantly increasing (`z > z_crit`).
    Increasing,
    /// Significantly decreasing (`z < -z_crit`).
    Decreasing,
    /// No significant monotone trend.
    NoTrend,
}

/// Result of the Mann–Kendall test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MannKendall {
    /// The raw S statistic: #concordant − #discordant pairs.
    pub s: i64,
    /// Variance of S under H0, with the tie correction.
    pub var_s: f64,
    /// The standardized statistic (continuity-corrected).
    pub z: f64,
    /// Kendall's tau-like normalization `S / (n(n-1)/2)`, in `[-1, 1]`.
    pub tau: f64,
}

impl MannKendall {
    /// Classify at the 95% two-sided level (`z_crit = 1.96`).
    pub fn trend(&self) -> Trend {
        self.trend_at(1.96)
    }

    /// Classify against an arbitrary critical z value.
    pub fn trend_at(&self, z_crit: f64) -> Trend {
        if self.z > z_crit {
            Trend::Increasing
        } else if self.z < -z_crit {
            Trend::Decreasing
        } else {
            Trend::NoTrend
        }
    }
}

/// Run the Mann–Kendall test on `seq`.
///
/// Sequences with fewer than two elements produce the all-zero result
/// (`NoTrend`). O(n²) pair enumeration — history windows are tiny (≤ 20).
///
/// ```
/// use histal_tseries::{mann_kendall, Trend};
/// let rising: Vec<f64> = (0..10).map(|i| i as f64).collect();
/// assert_eq!(mann_kendall(&rising).trend(), Trend::Increasing);
/// assert_eq!(mann_kendall(&[1.0, 1.0, 1.0]).trend(), Trend::NoTrend);
/// ```
pub fn mann_kendall(seq: &[f64]) -> MannKendall {
    let n = seq.len();
    if n < 2 {
        return MannKendall {
            s: 0,
            var_s: 0.0,
            z: 0.0,
            tau: 0.0,
        };
    }
    let mut s: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += match seq[j].partial_cmp(&seq[i]) {
                Some(std::cmp::Ordering::Greater) => 1,
                Some(std::cmp::Ordering::Less) => -1,
                _ => 0,
            };
        }
    }
    // Tie correction: group identical values.
    let mut sorted: Vec<f64> = seq.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut tie_term = 0.0;
    let mut run = 1usize;
    for i in 1..=sorted.len() {
        if i < sorted.len() && sorted[i] == sorted[i - 1] {
            run += 1;
        } else {
            if run > 1 {
                let t = run as f64;
                tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
            }
            run = 1;
        }
    }
    let nf = n as f64;
    let var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - tie_term) / 18.0;
    let z = if var_s <= 0.0 {
        0.0
    } else if s > 0 {
        (s as f64 - 1.0) / var_s.sqrt()
    } else if s < 0 {
        (s as f64 + 1.0) / var_s.sqrt()
    } else {
        0.0
    };
    let tau = s as f64 / (nf * (nf - 1.0) / 2.0);
    MannKendall { s, var_s, z, tau }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_increasing() {
        let mk = mann_kendall(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        // all pairs concordant: S = n(n-1)/2 = 28
        assert_eq!(mk.s, 28);
        assert!((mk.tau - 1.0).abs() < 1e-12);
        assert_eq!(mk.trend(), Trend::Increasing);
    }

    #[test]
    fn strictly_decreasing() {
        let mk = mann_kendall(&[8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(mk.s, -28);
        assert!((mk.tau + 1.0).abs() < 1e-12);
        assert_eq!(mk.trend(), Trend::Decreasing);
    }

    #[test]
    fn constant_sequence_no_trend() {
        let mk = mann_kendall(&[3.0; 10]);
        assert_eq!(mk.s, 0);
        assert_eq!(mk.z, 0.0);
        assert_eq!(mk.trend(), Trend::NoTrend);
    }

    #[test]
    fn alternating_sequence_no_trend() {
        let mk = mann_kendall(&[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(mk.trend(), Trend::NoTrend);
    }

    #[test]
    fn short_sequences_are_neutral() {
        assert_eq!(mann_kendall(&[]).trend(), Trend::NoTrend);
        assert_eq!(mann_kendall(&[1.0]).trend(), Trend::NoTrend);
    }

    #[test]
    fn variance_hand_computed_no_ties() {
        // n = 4: var = 4*3*13/18 = 8.666...
        let mk = mann_kendall(&[1.0, 3.0, 2.0, 4.0]);
        assert!((mk.var_s - 4.0 * 3.0 * 13.0 / 18.0).abs() < 1e-9);
        assert_eq!(mk.s, 4); // pairs: +1+1+1 +1-1 +1 → (1,3)+(1,2)+(1,4)+(3,4) up, (3,2) down, (2,4) up = 4
    }

    #[test]
    fn tie_correction_reduces_variance() {
        let no_ties = mann_kendall(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let ties = mann_kendall(&[1.0, 2.0, 2.0, 4.0, 5.0]);
        assert!(ties.var_s < no_ties.var_s);
    }

    #[test]
    fn tau_is_bounded() {
        let seqs: [&[f64]; 3] = [
            &[0.2, 0.9, 0.1, 0.4],
            &[1.0, 1.0, 2.0],
            &[5.0, 4.0, 4.0, 3.0],
        ];
        for s in seqs {
            let mk = mann_kendall(s);
            assert!(mk.tau >= -1.0 && mk.tau <= 1.0);
        }
    }
}

//! Elementary statistics over score sequences.
//!
//! FHS (paper Eq. 11) adds `w_f · V(H_t(x))` to the current score, where
//! `V` is the population variance of the last `l` evaluation results — a
//! sample fluctuating around the decision boundary gets a large variance
//! and is considered more uncertain than one with a stable sequence.

/// Arithmetic mean; 0 for the empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divides by `n`, matching the paper's `1/l Σ (…)²`);
/// 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// The FHS fluctuation term: population variance of the last `l` elements.
pub fn window_variance(seq: &[f64], l: usize) -> f64 {
    variance(crate::window::last_window(seq, l))
}

/// [`window_variance`] over the split sequence `front ++ back` (the two
/// halves of a wrapped ring buffer). Sums left-to-right in both passes
/// (mean, then squared deviations) exactly like the contiguous fold, so
/// the result is bit-identical to `window_variance(&concat, l)`.
pub fn window_variance_parts(front: &[f64], back: &[f64], l: usize) -> f64 {
    let (f, b) = crate::window::last_window_parts(front, back, l);
    let n = f.len() + b.len();
    if n < 2 {
        return 0.0;
    }
    let m = f.iter().chain(b.iter()).sum::<f64>() / n as f64;
    f.iter()
        .chain(b.iter())
        .map(|&x| (x - m) * (x - m))
        .sum::<f64>()
        / n as f64
}

/// Lag-`k` autocorrelation of a sequence, in `[-1, 1]`; 0 for sequences
/// too short or with zero variance. Distinguishes *oscillating* histories
/// (negative lag-1 ACF — a sample bouncing across the boundary) from
/// *drifting* ones (positive ACF) at equal variance, which neither the
/// fluctuation nor the trend feature can separate — the paper's "explore
/// more effective features" future-work direction.
pub fn autocorrelation(seq: &[f64], k: usize) -> f64 {
    let n = seq.len();
    if k == 0 {
        return if n == 0 { 0.0 } else { 1.0 };
    }
    if n <= k + 1 {
        return 0.0;
    }
    let m = mean(seq);
    let denom: f64 = seq.iter().map(|&x| (x - m) * (x - m)).sum();
    if denom <= 1e-15 {
        return 0.0;
    }
    let num: f64 = (0..n - k).map(|i| (seq[i] - m) * (seq[i + k] - m)).sum();
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_hand_computed() {
        // mean 2, deviations [-1, 0, 1] → var = 2/3
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0; 10]), 0.0);
    }

    #[test]
    fn variance_degenerate_lengths() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn window_variance_uses_only_window() {
        // Large early value outside the window must not contribute.
        let seq = [100.0, 1.0, 1.0, 1.0];
        assert_eq!(window_variance(&seq, 3), 0.0);
    }

    #[test]
    fn acf_of_oscillation_is_negative() {
        let osc = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(autocorrelation(&osc, 1) < -0.5);
    }

    #[test]
    fn acf_of_smooth_drift_is_positive() {
        let drift: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert!(autocorrelation(&drift, 1) > 0.5);
    }

    #[test]
    fn acf_edge_cases() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 1), 0.0);
        assert_eq!(autocorrelation(&[3.0; 10], 1), 0.0); // zero variance
        assert_eq!(autocorrelation(&[1.0, 2.0, 3.0], 0), 1.0);
        assert_eq!(autocorrelation(&[], 0), 0.0);
    }

    #[test]
    fn acf_bounded() {
        let seq = [0.2, 0.9, 0.1, 0.5, 0.7, 0.3, 0.8];
        for k in 1..4 {
            let a = autocorrelation(&seq, k);
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a), "lag {k}: {a}");
        }
    }

    #[test]
    fn fluctuating_beats_stable() {
        // The paper's motivating example: fluctuating sequence (d) must get
        // larger variance than stable sequence (a).
        let stable = [0.69, 0.68, 0.69, 0.68, 0.69];
        let fluct = [0.33, 0.68, 0.58, 0.52, 0.69];
        assert!(window_variance(&fluct, 5) > window_variance(&stable, 5));
    }
}

//! O(1)-per-update rolling statistics over a sliding score window.
//!
//! The history-aware strategies fold the last `l` scores of every pool
//! sample every round. Recomputing [`crate::exp_weighted_sum`] /
//! [`crate::window_variance`] from the stored sequence is O(l) per sample
//! per round; [`RollingStats`] maintains the same three quantities —
//! plain window sum (HUS), exponentially-weighted sum (WSHS, Eq. 9–10)
//! and population variance (FHS, Eq. 11) — incrementally, with one
//! constant-time update per appended score.
//!
//! * the window sum adds the new score and subtracts the evicted one;
//! * the WSHS sum uses the halving recurrence
//!   `S ← φ_new + (S − φ_out·2^{-(l-1)}) / 2` (the power-of-two weight
//!   products and the halving are exact floating-point operations);
//! * the variance is a Welford-style add/remove of the window mean and
//!   the sum of squared deviations `M2`.
//!
//! The rolling values associate the additions differently than the
//! from-scratch folds, so they agree with the reference implementations
//! to rounding error — a few ULP at the accumulator's magnitude — not
//! necessarily bit-for-bit. The from-scratch functions remain the test
//! oracle: property tests in `tests/rolling_props.rs` pin the error
//! bound for arbitrary append sequences, and the caller (the driver's
//! scoring path) is separately verified to produce identical selections.

/// Rolling window sum, exponentially-weighted sum and variance with O(1)
/// updates per appended value.
///
/// The window length is fixed at construction. Push values oldest-first
/// with [`RollingStats::push`], handing over the value that falls out of
/// the window (the caller owns the window storage, typically a
/// `VecDeque`, and knows the evictee).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RollingStats {
    /// Window length `l` (values contributing to the statistics).
    window: usize,
    /// Number of values currently in the window (≤ `window`).
    len: usize,
    /// Most recently pushed value.
    current: f64,
    /// Plain sum over the window.
    sum: f64,
    /// Exponentially-weighted sum, newest weight 1 (Eq. 9–10).
    ew_sum: f64,
    /// Welford running mean over the window.
    mean: f64,
    /// Welford sum of squared deviations over the window.
    m2: f64,
}

impl RollingStats {
    /// An empty window of length `window` (must be positive).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling window must be positive");
        Self {
            window,
            len: 0,
            current: 0.0,
            sum: 0.0,
            ew_sum: 0.0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of values currently contributing.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True while no value has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Push `value`; `evicted` is the value leaving the window (required
    /// exactly when the window was already full, i.e. `len() == window()`).
    pub fn push(&mut self, value: f64, evicted: Option<f64>) {
        debug_assert_eq!(
            evicted.is_some(),
            self.len == self.window,
            "evictee must be supplied iff the window is full"
        );
        self.current = value;
        if let Some(out) = evicted {
            // Window full: replace `out` by `value`.
            self.sum += value - out;
            // 2^{-(l-1)}·out is exact (power-of-two scale), as is the /2.
            let out_weight = (2f64).powi(1 - self.window as i32);
            self.ew_sum = value + (self.ew_sum - out * out_weight) * 0.5;
            // Welford remove-then-add at constant count.
            let n = self.len as f64;
            let old_mean = self.mean;
            let mean_wo = if self.len == 1 {
                0.0
            } else {
                old_mean - (out - old_mean) / (n - 1.0)
            };
            self.m2 -= (out - old_mean) * (out - mean_wo);
            let d = value - mean_wo;
            self.mean = mean_wo + d / n;
            self.m2 += d * (value - self.mean);
            self.m2 = self.m2.max(0.0);
        } else {
            self.sum += value;
            self.ew_sum = value + self.ew_sum * 0.5;
            self.len += 1;
            let d = value - self.mean;
            self.mean += d / self.len as f64;
            self.m2 += d * (value - self.mean);
        }
    }

    /// Most recently pushed value; 0 before the first push.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Plain sum of the window (HUS).
    pub fn uniform_sum(&self) -> f64 {
        self.sum
    }

    /// Exponentially-weighted sum of the window with newest weight 1
    /// (WSHS, Eq. 9–10).
    pub fn exp_weighted_sum(&self) -> f64 {
        self.ew_sum
    }

    /// Population variance of the window (FHS fluctuation, Eq. 11);
    /// 0 with fewer than two values, matching [`crate::variance`].
    pub fn variance(&self) -> f64 {
        if self.len < 2 {
            0.0
        } else {
            self.m2 / self.len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exp_weighted_sum, uniform_sum, window_variance};

    /// Drive a RollingStats alongside an explicit window and return both
    /// views after every push.
    fn drive(values: &[f64], window: usize) -> Vec<(RollingStats, Vec<f64>)> {
        let mut stats = RollingStats::new(window);
        let mut seq: Vec<f64> = Vec::new();
        let mut out = Vec::new();
        for &v in values {
            let evicted = if seq.len() >= window {
                Some(seq[seq.len() - window])
            } else {
                None
            };
            stats.push(v, evicted);
            seq.push(v);
            out.push((stats.clone(), seq.clone()));
        }
        out
    }

    fn assert_close(a: f64, b: f64, scale: f64, what: &str) {
        let tol = scale.abs().max(1.0) * 4.0 * f64::EPSILON;
        assert!((a - b).abs() <= tol, "{what}: rolling {a} vs scratch {b}");
    }

    #[test]
    fn tracks_reference_folds() {
        let values = [0.3, 0.9, 0.1, 0.7, 0.5, 0.2, 0.8];
        for window in 1..=5 {
            for (stats, seq) in drive(&values, window) {
                assert_eq!(stats.current(), *seq.last().unwrap());
                assert_close(
                    stats.uniform_sum(),
                    uniform_sum(&seq, window),
                    stats.uniform_sum(),
                    "sum",
                );
                assert_close(
                    stats.exp_weighted_sum(),
                    exp_weighted_sum(&seq, window),
                    stats.exp_weighted_sum(),
                    "ew_sum",
                );
                assert_close(
                    stats.variance(),
                    window_variance(&seq, window),
                    1.0,
                    "variance",
                );
            }
        }
    }

    #[test]
    fn empty_is_all_zero() {
        let s = RollingStats::new(3);
        assert!(s.is_empty());
        assert_eq!(s.current(), 0.0);
        assert_eq!(s.uniform_sum(), 0.0);
        assert_eq!(s.exp_weighted_sum(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn window_one_is_current_only() {
        let mut s = RollingStats::new(1);
        s.push(0.4, None);
        s.push(0.9, Some(0.4));
        assert_eq!(s.current(), 0.9);
        assert_eq!(s.uniform_sum(), 0.9);
        assert_eq!(s.exp_weighted_sum(), 0.9);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn variance_never_negative() {
        let mut s = RollingStats::new(3);
        let mut seq = Vec::new();
        for i in 0..50 {
            let v = 1e6 + (i % 2) as f64 * 1e-8;
            let evicted = (seq.len() >= 3).then(|| seq[seq.len() - 3]);
            s.push(v, evicted);
            seq.push(v);
            assert!(s.variance() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = RollingStats::new(0);
    }
}

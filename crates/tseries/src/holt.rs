//! Holt's linear (double) exponential smoothing — a trend-aware
//! next-score predictor that needs no training corpus at all.
//!
//! Sits between the persistence/AR baselines and the LSTM: it adapts to
//! level and trend online from the queried sequence itself, which makes
//! it the right predictor when no compatible history corpus exists to
//! fit AR/LSTM on.

use serde::{Deserialize, Serialize};

use crate::SequencePredictor;

/// Holt's linear smoothing with level gain `alpha` and trend gain `beta`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoltPredictor {
    alpha: f64,
    beta: f64,
}

impl Default for HoltPredictor {
    fn default() -> Self {
        Self::new(0.5, 0.3)
    }
}

impl HoltPredictor {
    /// Create a predictor with the given gains.
    ///
    /// # Panics
    /// Panics if either gain lies outside `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Self { alpha, beta }
    }

    /// Pick the `(alpha, beta)` pair from a small grid minimizing one-step
    /// squared error on `sequences` — a cheap stand-in for full MLE.
    pub fn fit(sequences: &[Vec<f64>]) -> Self {
        let grid = [0.2, 0.4, 0.6, 0.8, 1.0];
        let mut best = (Self::default(), f64::INFINITY);
        for &a in &grid {
            for &b in &grid {
                let cand = Self::new(a, b);
                let mut err = 0.0;
                let mut n = 0usize;
                for seq in sequences {
                    for t in 1..seq.len() {
                        let pred = cand.predict_next(&seq[..t]);
                        err += (pred - seq[t]).powi(2);
                        n += 1;
                    }
                }
                if n > 0 && err < best.1 {
                    best = (cand, err);
                }
            }
        }
        best.0
    }
}

impl SequencePredictor for HoltPredictor {
    fn predict_next(&self, seq: &[f64]) -> f64 {
        match seq.len() {
            0 => 0.0,
            1 => seq[0],
            _ => {
                let mut level = seq[0];
                let mut trend = seq[1] - seq[0];
                for &x in &seq[1..] {
                    let prev_level = level;
                    level = self.alpha * x + (1.0 - self.alpha) * (level + trend);
                    trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
                }
                let y = level + trend;
                if y.is_finite() {
                    y
                } else {
                    *seq.last().expect("non-empty")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sequence_predicts_constant() {
        let h = HoltPredictor::default();
        let p = h.predict_next(&[0.4; 10]);
        assert!((p - 0.4).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_extrapolated() {
        let h = HoltPredictor::new(0.8, 0.8);
        let seq: Vec<f64> = (0..10).map(|i| 0.1 * i as f64).collect();
        let p = h.predict_next(&seq);
        assert!((p - 1.0).abs() < 0.05, "predicted {p}, expected ≈ 1.0");
    }

    #[test]
    fn degenerate_lengths() {
        let h = HoltPredictor::default();
        assert_eq!(h.predict_next(&[]), 0.0);
        assert_eq!(h.predict_next(&[0.7]), 0.7);
    }

    #[test]
    fn fit_prefers_trend_tracking_on_trends() {
        let seqs: Vec<Vec<f64>> = (0..5)
            .map(|s| (0..12).map(|t| s as f64 * 0.1 + 0.05 * t as f64).collect())
            .collect();
        let fitted = HoltPredictor::fit(&seqs);
        let pred = fitted.predict_next(&seqs[0]);
        let expected = 0.05 * 12.0;
        assert!((pred - expected).abs() < 0.03, "pred {pred} vs {expected}");
    }

    #[test]
    fn fit_with_no_data_is_default() {
        let fitted = HoltPredictor::fit(&[]);
        assert!((fitted.alpha - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = HoltPredictor::new(0.0, 0.5);
    }
}

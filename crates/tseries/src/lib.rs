//! Time-series feature kit for *historical evaluation sequences*.
//!
//! In the paper, every unlabeled sample accumulates a sequence
//! `H_t(x) = [φ_1(x), …, φ_t(x)]` of query-strategy scores across active
//! learning iterations. The proposed strategies extract features from that
//! sequence:
//!
//! * [`window::exp_weighted_sum`] — the WSHS weighted sum (Eq. 9–10),
//! * [`stats::window_variance`] — the FHS fluctuation term (Eq. 11),
//! * [`trend::mann_kendall`] — the Mann–Kendall trend statistic used as an
//!   LHS ranking feature,
//! * [`ar::ArPredictor`] / [`lstm::LstmPredictor`] — next-score predictors
//!   (the paper uses an LSTM; AR(p) is the cheap ablation alternative).

pub mod ar;
pub mod holt;
pub mod lstm;
pub mod rolling;
pub mod stats;
pub mod trend;
pub mod window;

pub use ar::ArPredictor;
pub use holt::HoltPredictor;
pub use lstm::{LstmConfig, LstmPredictor};
pub use rolling::RollingStats;
pub use stats::{autocorrelation, mean, variance, window_variance, window_variance_parts};
pub use trend::{mann_kendall, MannKendall, Trend};
pub use window::{
    exp_weighted_sum, exp_weighted_sum_parts, exp_weights, last_window, last_window_parts,
    uniform_sum, uniform_sum_parts,
};

/// A next-score predictor over historical evaluation sequences.
///
/// Implemented by [`ArPredictor`] and [`LstmPredictor`]; the LHS strategy is
/// generic over this trait so either can provide the "predicted next
/// result" ranking feature.
pub trait SequencePredictor: Send + Sync {
    /// Predict the next value of `seq`. Implementations must return a finite
    /// value for any input, including the empty sequence.
    fn predict_next(&self, seq: &[f64]) -> f64;
}

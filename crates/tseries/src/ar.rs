//! Autoregressive AR(p) next-score predictor.
//!
//! The paper predicts the next evaluation score with an LSTM; the AR(p)
//! model fitted by ordinary least squares is the classical alternative
//! (ARIMA-family) the paper cites, and serves as the ablation predictor for
//! the LHS strategy. The normal equations are solved with Gaussian
//! elimination with partial pivoting — design matrices here are `p+1` wide
//! with `p ≤ ~8`, so numerical heroics are unnecessary.

#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

use crate::SequencePredictor;

/// An AR(p) model `x_t ≈ c + Σ_{i=1..p} a_i x_{t-i}` fitted by least
/// squares over a training corpus of sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArPredictor {
    order: usize,
    /// `[c, a_1, …, a_p]` — intercept then lag coefficients (lag 1 first).
    coeffs: Vec<f64>,
    /// Mean of all training targets, the fallback prediction for sequences
    /// shorter than `order`.
    fallback: f64,
}

impl ArPredictor {
    /// Fit an AR(`order`) model on every length-`order` window of every
    /// training sequence.
    ///
    /// Returns a persistence model (predict-last-value) when there is not
    /// enough data to identify the coefficients.
    ///
    /// # Panics
    /// Panics if `order == 0`.
    pub fn fit(sequences: &[Vec<f64>], order: usize) -> Self {
        assert!(order > 0, "AR order must be positive");
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut targets: Vec<f64> = Vec::new();
        for seq in sequences {
            if seq.len() <= order {
                continue;
            }
            for t in order..seq.len() {
                let mut row = Vec::with_capacity(order + 1);
                row.push(1.0);
                for i in 1..=order {
                    row.push(seq[t - i]);
                }
                rows.push(row);
                targets.push(seq[t]);
            }
        }
        let fallback = if targets.is_empty() {
            0.0
        } else {
            targets.iter().sum::<f64>() / targets.len() as f64
        };
        if rows.len() < order + 1 {
            // Unidentifiable: persistence model (coefficient 1 on lag 1).
            let mut coeffs = vec![0.0; order + 1];
            coeffs[1] = 1.0;
            return Self {
                order,
                coeffs,
                fallback,
            };
        }
        let dim = order + 1;
        // Normal equations with ridge jitter for stability.
        let mut xtx = vec![vec![0.0; dim]; dim];
        let mut xty = vec![0.0; dim];
        for (row, &y) in rows.iter().zip(&targets) {
            for i in 0..dim {
                xty[i] += row[i] * y;
                for j in 0..dim {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        for (i, r) in xtx.iter_mut().enumerate() {
            r[i] += 1e-6;
        }
        let coeffs = solve(xtx, xty).unwrap_or_else(|| {
            let mut c = vec![0.0; dim];
            c[1] = 1.0;
            c
        });
        Self {
            order,
            coeffs,
            fallback,
        }
    }

    /// The fitted order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// `[c, a_1, …, a_p]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }
}

impl SequencePredictor for ArPredictor {
    fn predict_next(&self, seq: &[f64]) -> f64 {
        if seq.len() < self.order {
            return match seq.last() {
                Some(&v) => v,
                None => self.fallback,
            };
        }
        let mut y = self.coeffs[0];
        for i in 1..=self.order {
            y += self.coeffs[i] * seq[seq.len() - i];
        }
        if y.is_finite() {
            y
        } else {
            self.fallback
        }
    }
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` for (numerically) singular systems.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_is_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn recovers_exact_ar1() {
        // x_t = 0.5 x_{t-1} + 0.1, exactly.
        let mut seq = vec![1.0];
        for _ in 0..50 {
            let last = *seq.last().unwrap();
            seq.push(0.5 * last + 0.1);
        }
        // Add a second trajectory from another start so the system is
        // well-conditioned.
        let mut seq2 = vec![-1.0];
        for _ in 0..50 {
            let last = *seq2.last().unwrap();
            seq2.push(0.5 * last + 0.1);
        }
        let m = ArPredictor::fit(&[seq.clone(), seq2], 1);
        assert!((m.coefficients()[0] - 0.1).abs() < 1e-6);
        assert!((m.coefficients()[1] - 0.5).abs() < 1e-6);
        let pred = m.predict_next(&seq);
        let expected = 0.5 * seq.last().unwrap() + 0.1;
        assert!((pred - expected).abs() < 1e-6);
    }

    #[test]
    fn short_history_falls_back_to_last_value() {
        let m = ArPredictor::fit(&[vec![0.0, 0.5, 1.0, 1.5, 2.0]], 3);
        assert_eq!(m.predict_next(&[7.0]), 7.0);
    }

    #[test]
    fn empty_history_uses_global_mean() {
        let m = ArPredictor::fit(&[vec![1.0, 1.0, 1.0, 1.0]], 2);
        let p = m.predict_next(&[]);
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_training_data_gives_persistence() {
        let m = ArPredictor::fit(&[], 2);
        assert_eq!(m.predict_next(&[0.3, 0.6]), 0.6);
        assert_eq!(m.predict_next(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_panics() {
        let _ = ArPredictor::fit(&[], 0);
    }
}

//! Property-based tests for [`RollingStats`]: the O(1) incremental
//! window sum, exponentially-weighted sum and variance must track the
//! from-scratch folds (`uniform_sum`, `exp_weighted_sum`,
//! `window_variance` — the test oracle) for arbitrary append sequences
//! and window lengths, to within accumulated rounding error.

use proptest::prelude::*;

use histal_tseries::{
    exp_weighted_sum, exp_weighted_sum_parts, uniform_sum, uniform_sum_parts, window_variance,
    window_variance_parts, RollingStats,
};

/// Drive the rolling tracker alongside an explicit sequence, as the
/// history store does: the evictee is the value `window` positions back,
/// handed over exactly when the window is full.
fn drive(values: &[f64], window: usize, mut check: impl FnMut(&RollingStats, &[f64])) {
    let mut stats = RollingStats::new(window);
    let mut seq: Vec<f64> = Vec::new();
    for &v in values {
        let evicted = (seq.len() >= window).then(|| seq[seq.len() - window]);
        stats.push(v, evicted);
        seq.push(v);
        check(&stats, &seq);
    }
}

/// The rolling updates associate additions differently than the oracle
/// folds and the Welford remove/add error compounds over a run, so the
/// bound is a relative 1e-10 — far above accumulated epsilon, far below
/// any structural defect (a wrong evictee or weight shows up at ~1e-1).
fn close(rolling: f64, scratch: f64) -> bool {
    (rolling - scratch).abs() <= scratch.abs().max(1.0) * 1e-10
}

proptest! {
    /// Window sum tracks `uniform_sum` after every push.
    #[test]
    fn sum_matches_oracle(
        values in prop::collection::vec(-5.0f64..5.0, 0..60),
        window in 1usize..9,
    ) {
        drive(&values, window, |stats, seq| {
            let oracle = uniform_sum(seq, window);
            assert!(
                close(stats.uniform_sum(), oracle),
                "sum: rolling {} vs scratch {}", stats.uniform_sum(), oracle
            );
        });
    }

    /// Exponentially-weighted sum tracks `exp_weighted_sum` after every
    /// push (the halving recurrence is exact in the weights; only the
    /// addition order differs).
    #[test]
    fn ew_sum_matches_oracle(
        values in prop::collection::vec(-5.0f64..5.0, 0..60),
        window in 1usize..9,
    ) {
        drive(&values, window, |stats, seq| {
            let oracle = exp_weighted_sum(seq, window);
            assert!(
                close(stats.exp_weighted_sum(), oracle),
                "ew_sum: rolling {} vs scratch {}", stats.exp_weighted_sum(), oracle
            );
        });
    }

    /// Welford variance tracks `window_variance` after every push and
    /// never goes negative.
    #[test]
    fn variance_matches_oracle(
        values in prop::collection::vec(-5.0f64..5.0, 0..60),
        window in 1usize..9,
    ) {
        drive(&values, window, |stats, seq| {
            let oracle = window_variance(seq, window);
            assert!(stats.variance() >= 0.0);
            assert!(
                close(stats.variance(), oracle),
                "variance: rolling {} vs scratch {}", stats.variance(), oracle
            );
        });
    }

    /// The two-slice `_parts` folds are **bit-identical** to the
    /// contiguous folds at every possible split point — not merely
    /// close: the zero-copy ring-buffer scoring path must reproduce the
    /// exact summation order of the contiguous path, so `==` on the
    /// f64 bits is the contract.
    #[test]
    fn parts_folds_bitwise_match_contiguous(
        values in prop::collection::vec(-5.0f64..5.0, 0..40),
        window in 1usize..9,
    ) {
        for split in 0..=values.len() {
            let (front, back) = values.split_at(split);
            assert_eq!(
                uniform_sum_parts(front, back, window).to_bits(),
                uniform_sum(&values, window).to_bits(),
                "uniform_sum split at {split}"
            );
            assert_eq!(
                exp_weighted_sum_parts(front, back, window).to_bits(),
                exp_weighted_sum(&values, window).to_bits(),
                "exp_weighted_sum split at {split}"
            );
            assert_eq!(
                window_variance_parts(front, back, window).to_bits(),
                window_variance(&values, window).to_bits(),
                "window_variance split at {split}"
            );
        }
    }

    /// `current` and `len` mirror the driven sequence exactly.
    #[test]
    fn bookkeeping_matches(
        values in prop::collection::vec(-5.0f64..5.0, 1..40),
        window in 1usize..6,
    ) {
        drive(&values, window, |stats, seq| {
            assert_eq!(stats.current(), *seq.last().unwrap());
            assert_eq!(stats.len(), seq.len().min(window));
            assert_eq!(stats.window(), window);
        });
    }
}

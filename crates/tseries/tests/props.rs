//! Property-based tests for the historical-sequence feature kit.

use proptest::prelude::*;

use histal_tseries::{
    exp_weighted_sum, exp_weights, last_window, mann_kendall, uniform_sum, variance,
    window_variance, ArPredictor, SequencePredictor,
};

fn seq_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, 0..40)
}

proptest! {
    /// WSHS with window 1 always degrades to the current score (the
    /// paper's compatibility claim for l = 1).
    #[test]
    fn wshs_l1_is_current(seq in seq_strategy()) {
        let expected = seq.last().copied().unwrap_or(0.0);
        prop_assert!((exp_weighted_sum(&seq, 1) - expected).abs() < 1e-12);
    }

    /// The weighted sum is bounded by the plain sum of window magnitudes
    /// (all weights ≤ 1).
    #[test]
    fn wshs_bounded_by_window_l1_norm(seq in seq_strategy(), l in 1usize..10) {
        let bound: f64 = last_window(&seq, l).iter().map(|v| v.abs()).sum();
        prop_assert!(exp_weighted_sum(&seq, l).abs() <= bound + 1e-9);
    }

    /// Appending an element only changes the weighted sum through the
    /// window: computing on the last l elements directly is identical.
    #[test]
    fn wshs_depends_only_on_window(seq in seq_strategy(), l in 1usize..8) {
        let window = last_window(&seq, l).to_vec();
        prop_assert!((exp_weighted_sum(&seq, l) - exp_weighted_sum(&window, l)).abs() < 1e-12);
    }

    /// Weights are normalized powers of two, strictly increasing.
    #[test]
    fn weights_increasing(n in 1usize..20) {
        let w = exp_weights(n);
        prop_assert_eq!(w.len(), n);
        prop_assert!((w[n - 1] - 1.0).abs() < 1e-12);
        for i in 1..n {
            prop_assert!((w[i] - 2.0 * w[i - 1]).abs() < 1e-12);
        }
    }

    /// Variance is non-negative and shift-invariant.
    #[test]
    fn variance_nonneg_shift_invariant(seq in seq_strategy(), shift in -5.0f64..5.0) {
        let v = variance(&seq);
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = seq.iter().map(|x| x + shift).collect();
        prop_assert!((variance(&shifted) - v).abs() < 1e-6);
    }

    /// Window variance never exceeds the full-sequence bound implied by
    /// the range (popoviciu): V ≤ (max-min)²/4.
    #[test]
    fn variance_popoviciu(seq in prop::collection::vec(-10.0f64..10.0, 2..40), l in 2usize..10) {
        let w = last_window(&seq, l);
        let max = w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = w.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(window_variance(&seq, l) <= (max - min).powi(2) / 4.0 + 1e-9);
    }

    /// Mann–Kendall: tau bounded, reversing the sequence flips S.
    #[test]
    fn mk_tau_bounds_and_antisymmetry(seq in prop::collection::vec(-10.0f64..10.0, 2..25)) {
        let mk = mann_kendall(&seq);
        prop_assert!(mk.tau >= -1.0 && mk.tau <= 1.0);
        let mut rev = seq.clone();
        rev.reverse();
        let mk_rev = mann_kendall(&rev);
        prop_assert_eq!(mk.s, -mk_rev.s);
    }

    /// MK variance is non-negative and ties never increase it.
    #[test]
    fn mk_variance_nonneg(seq in prop::collection::vec(-3.0f64..3.0, 2..25)) {
        prop_assert!(mann_kendall(&seq).var_s >= 0.0);
    }

    /// Uniform sum equals sum of the window.
    #[test]
    fn uniform_sum_matches_manual(seq in seq_strategy(), k in 1usize..10) {
        let manual: f64 = last_window(&seq, k).iter().sum();
        prop_assert!((uniform_sum(&seq, k) - manual).abs() < 1e-9);
    }

    /// AR predictions are always finite, whatever the training corpus.
    #[test]
    fn ar_predictions_finite(
        train in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 0..15), 0..6),
        query in seq_strategy(),
        order in 1usize..5,
    ) {
        let model = ArPredictor::fit(&train, order);
        prop_assert!(model.predict_next(&query).is_finite());
    }
}
